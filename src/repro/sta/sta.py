"""Graph-based static timing analysis with NLDM + Elmore wire delays.

Single-clock setup analysis, the way the paper's power-performance
stage uses commercial STA: rise and fall arrivals/slews propagate
separately through arc unateness (an inverter's rising output is timed
from its falling input), wire delays come from the extracted Elmore
values, and setup is checked at every flop D pin and primary output.
``achieved frequency`` is the frequency at which the worst path just
closes — the paper's Figs. 9-11 metric.

The combinational propagation — the hottest loop in the whole flow,
dominating the sizing stage — ships two implementations selected by
``$REPRO_KERNEL`` (:mod:`repro.core.kernels`):

* ``python`` — the reference topological-order loop below
  (:func:`_propagate_comb_python`), one scalar NLDM lookup at a time;
* ``numpy`` — a level-batched engine (:func:`_propagate_comb_numpy`)
  that groups instances by logic level and evaluates every timing-arc
  candidate of a level through one stacked-table interpolation
  (:class:`repro.sta.nldm.TableStack`).

The two paths are operation-order compatible and agree bit-for-bit:
the batched engine performs the same adds in the same order, replaces
the running strict-``>`` maximum with an argmax (first occurrence of
the maximum — exactly what first-wins strict updates keep), and
resolves ``from_pin`` as the later of the two edges' winning arcs,
which is precisely the last arc the scalar loop would have accepted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from ..cells import Library, TimingArc
from ..core import kernels
from ..core.telemetry import current_tracer
from ..extract import Extraction
from ..netlist import Netlist
from .nldm import TableStack

#: Slew assumed at primary inputs, ps.
PRIMARY_INPUT_SLEW_PS = 10.0
#: Wire slew degradation per ps of Elmore delay.
SLEW_DEGRADATION = 1.8

_NEG = -1e18


@dataclass
class PinTiming:
    """Rise/fall arrivals and slews at one net (at its driver pin)."""

    arrival_rise_ps: float = _NEG
    arrival_fall_ps: float = _NEG
    slew_rise_ps: float = PRIMARY_INPUT_SLEW_PS
    slew_fall_ps: float = PRIMARY_INPUT_SLEW_PS

    @classmethod
    def at_time(cls, t_ps: float, slew_ps: float = PRIMARY_INPUT_SLEW_PS):
        return cls(t_ps, t_ps, slew_ps, slew_ps)

    def arrival(self, rise: bool) -> float:
        return self.arrival_rise_ps if rise else self.arrival_fall_ps

    def slew(self, rise: bool) -> float:
        return self.slew_rise_ps if rise else self.slew_fall_ps

    def set_edge(self, rise: bool, arrival: float, slew: float) -> None:
        if rise:
            self.arrival_rise_ps = arrival
            self.slew_rise_ps = slew
        else:
            self.arrival_fall_ps = arrival
            self.slew_fall_ps = slew

    @property
    def worst_arrival_ps(self) -> float:
        return max(self.arrival_rise_ps, self.arrival_fall_ps)

    @property
    def worst_slew_ps(self) -> float:
        return max(self.slew_rise_ps, self.slew_fall_ps)

    def delayed(self, wire_ps: float) -> "PinTiming":
        """This timing seen after a wire segment of the given Elmore delay."""
        extra_slew = SLEW_DEGRADATION * wire_ps
        return PinTiming(
            self.arrival_rise_ps + wire_ps if self.arrival_rise_ps > _NEG / 2 else _NEG,
            self.arrival_fall_ps + wire_ps if self.arrival_fall_ps > _NEG / 2 else _NEG,
            self.slew_rise_ps + extra_slew,
            self.slew_fall_ps + extra_slew,
        )


@dataclass
class TimingReport:
    """Result of one setup-timing run."""

    period_ps: float
    wns_ps: float
    tns_ps: float
    worst_endpoint: str
    critical_path: list[str]
    clock_skew_ps: float
    insertion_delay_ps: float
    endpoint_count: int
    #: Arrival time of the worst data path, ps.
    worst_arrival_ps: float

    @property
    def achieved_period_ps(self) -> float:
        """Smallest period the design would meet, given this run."""
        return self.period_ps - self.wns_ps

    @property
    def achieved_frequency_ghz(self) -> float:
        return 1000.0 / self.achieved_period_ps

    @property
    def met(self) -> bool:
        return self.wns_ps >= 0.0


def _propagate_arc(arc: TimingArc, pt_in: PinTiming, load_ff: float,
                   out: PinTiming, stats: list | None = None) -> bool:
    """Fold one arc's contribution into the output timing.

    Returns True when this arc set a new worst output arrival.
    ``stats``, when given, counts delay-table evaluations in slot 0.
    """
    improved = False
    for rise_out in (True, False):
        for rise_in in arc.input_edges_for(rise_out):
            arrival_in = pt_in.arrival(rise_in)
            if arrival_in < _NEG / 2:
                continue
            slew_in = pt_in.slew(rise_in)
            if stats is not None:
                stats[0] += 1
            delay = arc.delay(slew_in, load_ff, rise=rise_out)
            arrival = arrival_in + delay
            if arrival > out.arrival(rise_out):
                out.set_edge(rise_out, arrival,
                             arc.transition(slew_in, load_ff, rise=rise_out))
                improved = True
    return improved


def analyze_timing(netlist: Netlist, library: Library, extraction: Extraction,
                   period_ps: float, clock: str = "clk") -> TimingReport:
    """Run setup analysis at ``period_ps``; see :class:`TimingReport`."""
    net_timing: dict[str, PinTiming] = {}
    net_from: dict[str, tuple[str, str] | None] = {}

    for net in netlist.nets.values():
        if net.is_primary_input:
            net_timing[net.name] = PinTiming.at_time(0.0)
            net_from[net.name] = None

    def input_timing(net_name: str, inst: str, pin: str) -> PinTiming:
        base = net_timing[net_name]
        wire = extraction[net_name].elmore_to(inst, pin) \
            if net_name in extraction else 0.0
        return base.delayed(wire)

    def net_load(net_name: str) -> float:
        return extraction[net_name].total_cap_ff if net_name in extraction \
            else 0.0

    # Clock network first: propagate along clock tree (CLKBUF chains).
    clock_arrivals: dict[str, float] = {}  # flop instance -> CK arrival
    if clock in netlist.nets:
        _propagate_clock(netlist, library, extraction, clock,
                         net_timing, clock_arrivals)

    # Sequential launch points (CK -> Q).
    for inst in netlist.sequential_instances(library):
        master = library[inst.master]
        ck_arr = clock_arrivals.get(inst.name, 0.0)
        # One launch per clock-to-output arc: a DFF has exactly one
        # (CK -> Q); a hard macro launches every data output.
        for arc in master.arcs:
            out_net = inst.connections.get(arc.to_pin)
            if out_net is None:
                continue
            load = net_load(out_net)
            out = PinTiming()
            _propagate_arc(arc, PinTiming.at_time(ck_arr), load, out)
            net_timing[out_net] = out
            net_from[out_net] = (inst.name, "CK")

    # Combinational propagation in topological order.
    tracer = current_tracer()
    with tracer.span("kernel.sta.propagate"):
        if kernels.use_numpy_kernels():
            nets_timed, net_from_view = _propagate_comb_numpy(
                netlist, library, extraction, net_timing, net_from, tracer)
        else:
            nets_timed = _propagate_comb_python(
                netlist, library, net_timing, net_from,
                input_timing, net_load, tracer)
            net_from_view = net_from

    # Endpoint checks.
    wns = float("inf")
    tns = 0.0
    worst_endpoint = ""
    worst_net = ""
    worst_arrival = 0.0
    endpoints = 0
    for inst in netlist.sequential_instances(library):
        master = library[inst.master]
        # Every non-clock input is a setup endpoint: D on a flop, the
        # address/data/enable pins on a hard macro.
        for pin in master.input_pins:
            d_net = inst.connections.get(pin.name)
            if d_net is None or d_net not in net_timing:
                continue
            endpoints += 1
            pt = input_timing(d_net, inst.name, pin.name)
            required = period_ps + clock_arrivals.get(inst.name, 0.0) \
                - master.sequential.setup_ps
            slack = required - pt.worst_arrival_ps
            tns += min(slack, 0.0)
            if slack < wns:
                wns = slack
                worst_endpoint = inst.name
                worst_net = d_net
                worst_arrival = pt.worst_arrival_ps
    for net in netlist.primary_outputs:
        if net.name not in net_timing or net.is_primary_input:
            continue
        pt = net_timing[net.name]
        if pt.worst_arrival_ps < _NEG / 2:
            continue
        endpoints += 1
        slack = period_ps - pt.worst_arrival_ps
        tns += min(slack, 0.0)
        if slack < wns:
            wns = slack
            worst_endpoint = f"PO:{net.name}"
            worst_net = net.name
            worst_arrival = pt.worst_arrival_ps

    if endpoints == 0:
        raise ValueError("design has no timing endpoints")

    path = _trace_path(netlist, net_from_view, worst_net)
    skews = list(clock_arrivals.values())
    tracer.gauge("sta.endpoints", endpoints)
    tracer.gauge("sta.nets_timed", nets_timed)
    return TimingReport(
        period_ps=period_ps,
        wns_ps=wns,
        tns_ps=tns,
        worst_endpoint=worst_endpoint,
        critical_path=path,
        clock_skew_ps=(max(skews) - min(skews)) if skews else 0.0,
        insertion_delay_ps=max(skews) if skews else 0.0,
        endpoint_count=endpoints,
        worst_arrival_ps=worst_arrival,
    )


def _propagate_comb_python(netlist: Netlist, library: Library,
                           net_timing: dict[str, PinTiming],
                           net_from: dict, input_timing, net_load,
                           tracer) -> int:
    """Reference kernel: scalar propagation in topological order."""
    stats = [0, 0] if tracer.enabled else None
    for inst in netlist.topological_order(library):
        master = library[inst.master]
        out_pins = master.output_pins
        if not out_pins:
            continue
        out_net = inst.connections[out_pins[0].name]
        if master.function in ("TIEHI", "TIELO"):
            net_timing.setdefault(out_net, PinTiming.at_time(0.0))
            net_from.setdefault(out_net, None)
            continue
        if stats is not None:
            stats[1] += 1
        load = net_load(out_net)
        out = PinTiming()
        from_pin = None
        for arc in master.arcs:
            in_net = inst.connections.get(arc.from_pin)
            if in_net is None or in_net not in net_timing:
                continue
            pt = input_timing(in_net, inst.name, arc.from_pin)
            if _propagate_arc(arc, pt, load, out, stats):
                from_pin = arc.from_pin
        net_timing[out_net] = out
        net_from[out_net] = (inst.name, from_pin) if from_pin else None
    if stats is not None:
        tracer.count("kernel.sta.insts", stats[1])
        tracer.count("kernel.sta.delay_evals", stats[0])
    return len(net_timing)


# -- numpy kernel: level-batched propagation ---------------------------------


class _MasterTemplate:
    """Per-master propagation recipe shared by all its instances.

    ``rise_cands`` / ``fall_cands`` list the (arc index, input edge,
    delay table, transition table) candidates for the rise/fall output
    edge, in exactly the order the scalar loop evaluates them: arcs in
    declaration order, and for non-unate arcs the rising input first.
    """

    __slots__ = ("is_seq", "is_tie", "out_pin", "in_pin_names",
                 "arc_from_pins", "rise_cands", "fall_cands", "sig")

    def __init__(self, master) -> None:
        self.is_seq = master.is_sequential
        self.is_tie = master.function in ("TIEHI", "TIELO")
        outs = master.output_pins
        self.out_pin = outs[0].name if outs else None
        self.in_pin_names = [p.name for p in master.input_pins]
        self.arc_from_pins = [arc.from_pin for arc in master.arcs]
        self.rise_cands = []
        self.fall_cands = []
        for ai, arc in enumerate(master.arcs):
            for rise_in in arc.input_edges_for(True):
                self.rise_cands.append(
                    (ai, rise_in, arc.rise_delay, arc.rise_transition))
            for rise_in in arc.input_edges_for(False):
                self.fall_cands.append(
                    (ai, rise_in, arc.fall_delay, arc.fall_transition))
        # Structure signature: a drive-strength swap that preserves it
        # can be patched in place; anything else forces a prep rebuild.
        self.sig = (self.is_seq, self.is_tie, self.out_pin,
                    tuple(self.arc_from_pins),
                    tuple(arc.unate for arc in master.arcs))


class _LevelBatch:
    """All candidate lanes of one logic level, padded to (n, R + F)."""

    __slots__ = ("rows", "out_ids", "out_names", "R", "F", "in_ids",
                 "rise_in", "present", "gid_d", "row_d", "gid_t", "row_t",
                 "arc_idx", "wire_slot", "wire_pairs")


class _TimingPrep:
    """Cached level/candidate structure for one (netlist, library) pair.

    Everything here is purely structural — net ids, logic levels,
    candidate lanes, lookup-table rows — and is reused across the many
    ``analyze_timing`` calls the sizing loop makes on one netlist.
    Per-call data (wire delays, loads, arrivals) is gathered fresh each
    run; drive-strength swaps are patched in via :meth:`refresh`.
    """

    def __init__(self, netlist: Netlist, library: Library) -> None:
        self.stack = TableStack()
        self.templates: dict[str, _MasterTemplate] = {}
        self.net_id = {name: i for i, name in enumerate(netlist.nets)}
        self.n_nets = len(self.net_id)

        instances = netlist.instances
        nets = netlist.nets
        comb_names: list[str] = []
        comb_tmpls: list[_MasterTemplate] = []
        out_names: list[str] = []
        self.ties: list[tuple[str, str, int]] = []
        d_nets: list[str] = []
        for inst in instances.values():
            t = self._template(library, inst.master)
            if t.is_seq:
                for pin in t.in_pin_names:
                    d = inst.connections.get(pin)
                    if d is not None:
                        d_nets.append(d)
                continue
            if t.out_pin is None:
                continue
            out_net = inst.connections[t.out_pin]
            if t.is_tie:
                self.ties.append((inst.name, out_net, self.net_id[out_net]))
                continue
            comb_names.append(inst.name)
            comb_tmpls.append(t)
            out_names.append(out_net)
        self.comb_names = comb_names
        self.comb_masters = [instances[n].master for n in comb_names]
        self.row_template = comb_tmpls
        #: Net names whose PinTiming the endpoint checks will read.
        self.needed = d_nets + [n.name for n in nets.values()
                                if n.is_primary_output]

        # Logic levels over the same dependency edges the reference
        # topological order uses (non-clock input pins, combinational
        # drivers) — every arc fanin therefore sits at a lower level.
        n = len(comb_names)
        index_of = {name: i for i, name in enumerate(comb_names)}
        indeg = [0] * n
        deps: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            conn = instances[comb_names[i]].connections
            for pin in comb_tmpls[i].in_pin_names:
                driver = nets[conn[pin]].driver
                if driver is None:
                    continue
                j = index_of.get(driver[0])
                if j is None:
                    continue  # sequential or tie driver: ready at level 0
                deps[j].append(i)
                indeg[i] += 1
        level = [0] * n
        from collections import deque
        queue = deque(i for i in range(n) if indeg[i] == 0)
        done = 0
        while queue:
            i = queue.popleft()
            done += 1
            nxt = level[i] + 1
            for j in deps[i]:
                if nxt > level[j]:
                    level[j] = nxt
                indeg[j] -= 1
                if indeg[j] == 0:
                    queue.append(j)
        if done != n:
            raise ValueError("combinational loop detected")
        by_level: dict[int, list[int]] = {}
        for i in range(n):
            by_level.setdefault(level[i], []).append(i)

        self.levels = [self._build_level(netlist, rows, out_names)
                       for _lvl, rows in sorted(by_level.items())]
        #: row -> (level index, row-within-level) for master refreshes.
        self.row_pos: list[tuple[int, int]] = [(0, 0)] * n
        for li, lvl in enumerate(self.levels):
            for r, i in enumerate(lvl.rows.tolist()):
                self.row_pos[i] = (li, r)

    def _template(self, library: Library, master_name: str) -> _MasterTemplate:
        t = self.templates.get(master_name)
        if t is None:
            t = _MasterTemplate(library[master_name])
            self.templates[master_name] = t
        return t

    def _build_level(self, netlist: Netlist, rows: list[int],
                     out_names: list[str]) -> _LevelBatch:
        instances = netlist.instances
        lvl = _LevelBatch()
        n = len(rows)
        lvl.rows = np.asarray(rows, dtype=np.intp)
        lvl.out_names = [out_names[i] for i in rows]
        lvl.out_ids = np.array([self.net_id[o] for o in lvl.out_names],
                               dtype=np.intp)
        tmpls = [self.row_template[i] for i in rows]
        R = max((len(t.rise_cands) for t in tmpls), default=0)
        F = max((len(t.fall_cands) for t in tmpls), default=0)
        lvl.R, lvl.F = R, F
        P = R + F
        lvl.in_ids = np.zeros((n, P), dtype=np.intp)
        lvl.rise_in = np.zeros((n, P), dtype=bool)
        lvl.present = np.zeros((n, P), dtype=bool)
        lvl.gid_d = np.zeros((n, P), dtype=np.intp)
        lvl.row_d = np.zeros((n, P), dtype=np.intp)
        lvl.gid_t = np.zeros((n, P), dtype=np.intp)
        lvl.row_t = np.zeros((n, P), dtype=np.intp)
        lvl.arc_idx = np.full((n, P), -1, dtype=np.int32)
        lvl.wire_slot = np.zeros((n, P), dtype=np.intp)
        lvl.wire_pairs = []
        for r, i in enumerate(rows):
            t = tmpls[r]
            conn = instances[self.comb_names[i]].connections
            arc_info: list[tuple[int, int] | None] = []
            for fp in t.arc_from_pins:
                in_net = conn.get(fp)
                if in_net is None:
                    arc_info.append(None)
                    continue
                arc_info.append((self.net_id[in_net], len(lvl.wire_pairs)))
                lvl.wire_pairs.append((self.comb_names[i], fp, in_net))
            self._fill_row(lvl, r, t, arc_info)
        return lvl

    def _fill_row(self, lvl: _LevelBatch, r: int, t: _MasterTemplate,
                  arc_info: list) -> None:
        """Write one instance's candidate lanes (tables and topology)."""
        for base, cands in ((0, t.rise_cands), (lvl.R, t.fall_cands)):
            for off, (ai, rise_in, dtab, ttab) in enumerate(cands):
                info = arc_info[ai]
                if info is None:
                    continue
                nid, slot = info
                col = base + off
                lvl.in_ids[r, col] = nid
                lvl.rise_in[r, col] = rise_in
                lvl.present[r, col] = True
                lvl.arc_idx[r, col] = ai
                lvl.wire_slot[r, col] = slot
                gd, rd = self.stack.add(dtab)
                gt, rt = self.stack.add(ttab)
                lvl.gid_d[r, col] = gd
                lvl.row_d[r, col] = rd
                lvl.gid_t[r, col] = gt
                lvl.row_t[r, col] = rt

    def refresh(self, netlist: Netlist, library: Library) -> bool:
        """Patch drive-strength swaps in place; False forces a rebuild."""
        instances = netlist.instances
        for i, name in enumerate(self.comb_names):
            master = instances[name].master
            if master == self.comb_masters[i]:
                continue
            t = self._template(library, master)
            old = self.row_template[i]
            if t.sig != old.sig:
                return False
            li, r = self.row_pos[i]
            lvl = self.levels[li]
            arc_info: list[tuple[int, int] | None] = []
            for ai in range(len(t.arc_from_pins)):
                # Connectivity is untouched by a drive swap; reuse the
                # stored lanes of any candidate column of this arc.
                cols = np.flatnonzero(lvl.arc_idx[r] == ai)
                if len(cols):
                    c = cols[0]
                    arc_info.append((int(lvl.in_ids[r, c]),
                                     int(lvl.wire_slot[r, c])))
                else:
                    arc_info.append(None)
            self._fill_row(lvl, r, t, arc_info)
            self.comb_masters[i] = master
            self.row_template[i] = t
        return True


_PREP_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def _prep_for(netlist: Netlist, library: Library) -> _TimingPrep:
    token = (getattr(netlist, "rev", None), len(netlist.instances),
             len(netlist.nets), id(library))
    entry = _PREP_CACHE.get(netlist)
    if entry is not None and entry[0] == token \
            and entry[1].refresh(netlist, library):
        return entry[1]
    prep = _TimingPrep(netlist, library)
    _PREP_CACHE[netlist] = (token, prep)
    return prep


class _ArrayFromMap:
    """`net_from` view over the batched engine's provenance arrays."""

    def __init__(self, base: dict, net_id: dict, from_inst, from_arc,
                 comb_names, row_template) -> None:
        self.base = base
        self.net_id = net_id
        self.from_inst = from_inst
        self.from_arc = from_arc
        self.comb_names = comb_names
        self.row_template = row_template

    def get(self, name, default=None):
        i = self.net_id.get(name)
        if i is not None:
            row = self.from_inst[i]
            if row >= 0:
                arc = self.from_arc[i]
                if arc < 0:
                    return default
                return (self.comb_names[row],
                        self.row_template[row].arc_from_pins[arc])
        return self.base.get(name, default)


def _propagate_comb_numpy(netlist: Netlist, library: Library,
                          extraction: Extraction,
                          net_timing: dict[str, PinTiming],
                          net_from: dict, tracer):
    """Level-batched kernel: all arcs of a level in one table pass."""
    prep = _prep_for(netlist, library)
    n_nets = prep.n_nets
    arr_r = np.full(n_nets, _NEG)
    arr_f = np.full(n_nets, _NEG)
    slw_r = np.full(n_nets, PRIMARY_INPUT_SLEW_PS)
    slw_f = np.full(n_nets, PRIMARY_INPUT_SLEW_PS)
    init_mask = np.zeros(n_nets, dtype=bool)
    net_id = prep.net_id
    for name, pt in net_timing.items():
        i = net_id[name]
        arr_r[i] = pt.arrival_rise_ps
        arr_f[i] = pt.arrival_fall_ps
        slw_r[i] = pt.slew_rise_ps
        slw_f[i] = pt.slew_fall_ps
        init_mask[i] = True

    for _inst_name, out_name, oid in prep.ties:
        if out_name not in net_timing:
            net_timing[out_name] = PinTiming.at_time(0.0)
            net_from.setdefault(out_name, None)
            arr_r[oid] = arr_f[oid] = 0.0
            slw_r[oid] = slw_f[oid] = PRIMARY_INPUT_SLEW_PS
            init_mask[oid] = True

    written = np.zeros(n_nets, dtype=bool)
    from_inst = np.full(n_nets, -1, dtype=np.int64)
    from_arc = np.full(n_nets, -1, dtype=np.int64)
    exn = extraction.nets
    counting = tracer.enabled
    evals = 0
    batch_max = 0
    for lvl in prep.levels:
        n = len(lvl.out_names)
        batch_max = max(batch_max, n)
        wires = np.zeros(max(len(lvl.wire_pairs), 1))
        for k, (iname, pin, in_net) in enumerate(lvl.wire_pairs):
            p = exn.get(in_net)
            wires[k] = p.sink_elmore_ps.get((iname, pin), 0.0) \
                if p is not None else 0.0
        loads = np.empty(n)
        for k, out_name in enumerate(lvl.out_names):
            p = exn.get(out_name)
            loads[k] = p.total_cap_ff if p is not None else 0.0

        in_ids = lvl.in_ids
        arr_sel = np.where(lvl.rise_in, arr_r[in_ids], arr_f[in_ids])
        slw_sel = np.where(lvl.rise_in, slw_r[in_ids], slw_f[in_ids])
        w = wires[lvl.wire_slot]
        # Same three adds, same order, as PinTiming.delayed + the arc
        # fold: (arrival + wire) + delay, slew + (1.8 * wire).
        arr_in = arr_sel + w
        slw_in = slw_sel + SLEW_DEGRADATION * w
        valid = lvl.present & (arr_sel > _NEG / 2)
        if counting:
            evals += int(valid.sum())
        delay = prep.stack.evaluate(lvl.gid_d, lvl.row_d, slw_in,
                                    loads[:, None])
        cand = np.where(valid, arr_in + delay, -np.inf)

        rowsel = np.arange(n)
        edge_arc = []
        for lo, hi in ((0, lvl.R), (lvl.R, lvl.R + lvl.F)):
            if hi == lo:
                edge_arc.append(np.full(n, -1, dtype=np.int64))
                continue
            block = cand[:, lo:hi]
            idx = np.argmax(block, axis=1)
            best = block[rowsel, idx]
            has = valid[:, lo:hi].any(axis=1)
            wcol = idx + lo
            trans = prep.stack.evaluate(lvl.gid_t[rowsel, wcol],
                                        lvl.row_t[rowsel, wcol],
                                        slw_in[rowsel, wcol], loads)
            arrv = np.where(has, best, _NEG)
            slv = np.where(has, trans, PRIMARY_INPUT_SLEW_PS)
            if lo == 0:
                arr_r[lvl.out_ids] = arrv
                slw_r[lvl.out_ids] = slv
            else:
                arr_f[lvl.out_ids] = arrv
                slw_f[lvl.out_ids] = slv
            edge_arc.append(np.where(has, lvl.arc_idx[rowsel, wcol], -1))
        written[lvl.out_ids] = True
        from_inst[lvl.out_ids] = lvl.rows
        from_arc[lvl.out_ids] = np.maximum(edge_arc[0], edge_arc[1])

    nets_timed = len(net_timing) + int((written & ~init_mask).sum())
    if counting:
        tracer.count("kernel.sta.insts", len(prep.comb_names))
        tracer.count("kernel.sta.delay_evals", evals)
        tracer.count("kernel.sta.batches", len(prep.levels))
        tracer.gauge("kernel.sta.batch_max", batch_max)

    for name in prep.needed:
        i = net_id.get(name)
        if i is not None and written[i] and name not in net_timing:
            net_timing[name] = PinTiming(
                float(arr_r[i]), float(arr_f[i]),
                float(slw_r[i]), float(slw_f[i]))
    from_map = _ArrayFromMap(net_from, net_id, from_inst, from_arc,
                             prep.comb_names, prep.row_template)
    return nets_timed, from_map


def _propagate_clock(netlist: Netlist, library: Library,
                     extraction: Extraction, clock: str,
                     net_timing: dict[str, PinTiming],
                     clock_arrivals: dict[str, float]) -> None:
    """BFS down the clock tree, accumulating buffer and wire delays.

    Flops latch on the rising edge, so the capture arrival is the rise
    arrival at each CK pin.
    """
    frontier = [clock]
    net_timing.setdefault(clock, PinTiming.at_time(0.0))
    while frontier:
        net_name = frontier.pop()
        base = net_timing[net_name]
        for inst_name, pin_name in netlist.nets[net_name].sinks:
            inst = netlist.instances[inst_name]
            master = library[inst.master]
            wire = extraction[net_name].elmore_to(inst_name, pin_name) \
                if net_name in extraction else 0.0
            at_pin = base.delayed(wire)
            if master.is_sequential:
                clock_arrivals[inst_name] = at_pin.arrival(rise=True)
                continue
            # A clock buffer: propagate through it.
            out_net = inst.connections[master.output.name]
            load = extraction[out_net].total_cap_ff \
                if out_net in extraction else 0.0
            out = PinTiming()
            _propagate_arc(master.arcs[0], at_pin, load, out)
            net_timing[out_net] = out
            frontier.append(out_net)


def _trace_path(netlist: Netlist, net_from, end_net: str) -> list[str]:
    """Walk arrival provenance back to a launch point."""
    path: list[str] = []
    net_name = end_net
    seen = set()
    while net_name and net_name not in seen:
        seen.add(net_name)
        path.append(net_name)
        source = net_from.get(net_name)
        if source is None:
            break
        inst_name, from_pin = source
        path.append(f"{inst_name}/{from_pin}")
        if from_pin == "CK":
            break
        net_name = netlist.instances[inst_name].connections.get(from_pin, "")
    return list(reversed(path))
