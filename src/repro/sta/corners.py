"""Multi-corner timing: PVT derates over the nominal characterization.

The virtual PDK is characterized at the typical corner; slow and fast
corners are modeled as global derates on cell delays and wire RC — the
standard single-library multi-corner approximation (an OCV-style global
factor, not per-cell recharacterization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cells import Library
from ..extract import Extraction
from ..netlist import Netlist
from .rc_scale import scale_extraction
from .sta import TimingReport, analyze_timing


@dataclass(frozen=True)
class Corner:
    """One process/voltage/temperature corner."""

    name: str
    cell_derate: float   # multiplier on cell delays
    wire_derate: float   # multiplier on wire RC


#: Standard corner set: slow (setup signoff), typical, fast (hold).
CORNERS = (
    Corner("ss_0p63v_125c", cell_derate=1.18, wire_derate=1.10),
    Corner("tt_0p70v_25c", cell_derate=1.00, wire_derate=1.00),
    Corner("ff_0p77v_m40c", cell_derate=0.85, wire_derate=0.93),
)


def analyze_corners(netlist: Netlist, library: Library,
                    extraction: Extraction, period_ps: float,
                    clock: str = "clk",
                    corners: tuple[Corner, ...] = CORNERS
                    ) -> dict[str, TimingReport]:
    """Setup analysis at each corner; returns reports keyed by name.

    Cell derates scale the whole arrival (cell delays dominate), wire
    derates scale the extracted parasitics before the run.
    """
    reports: dict[str, TimingReport] = {}
    for corner in corners:
        scaled = scale_extraction(extraction, corner.wire_derate)
        report = analyze_timing(netlist, library, scaled, period_ps, clock)
        reports[corner.name] = derate_report(report, corner.cell_derate,
                                             period_ps)
    return reports


def worst_corner(reports: dict[str, TimingReport]) -> tuple[str, TimingReport]:
    """The signoff corner: worst slack."""
    name = min(reports, key=lambda n: reports[n].wns_ps)
    return name, reports[name]


def derate_report(report: TimingReport, cell_derate: float,
                  period_ps: float) -> TimingReport:
    """Apply a global cell-delay derate to a finished timing report.

    The arrival-side quantities scale by ``cell_derate`` while the
    period stays fixed — the same OCV-style global factor
    :func:`analyze_corners` uses, exposed for the Monte-Carlo variation
    engine's per-sample CD/gate-length derates.
    """
    from dataclasses import replace

    arrival = report.worst_arrival_ps * cell_derate
    wns = period_ps - (period_ps - report.wns_ps) * cell_derate
    return replace(
        report,
        wns_ps=wns,
        tns_ps=report.tns_ps * cell_derate,
        worst_arrival_ps=arrival,
        insertion_delay_ps=report.insertion_delay_ps * cell_derate,
        clock_skew_ps=report.clock_skew_ps * cell_derate,
    )
