"""Stacked NLDM lookup-table interpolation kernel.

:class:`~repro.cells.timing.LookupTable` answers one scalar bilinear
lookup at a time; STA under the wireload sizing loop asks for hundreds
of thousands of them.  :class:`TableStack` registers every distinct
table once, groups tables that share the same (slew, load) axes, and
stacks each group's value grids into one ``(n_tables, k, m)`` array so
a whole level of timing-arc candidates evaluates in a handful of numpy
operations.

Bit-compatibility contract: :meth:`TableStack.evaluate` performs the
*same* IEEE-754 operations in the *same* order as
``LookupTable.__call__`` — clamp to the axis ends, ``bisect_right``-
style cell search (``np.searchsorted(..., side="right")``), then the
identical two-step bilinear formula — so a stacked evaluation returns
exactly the scalar path's bits for every lane.  The equivalence is
pinned by hypothesis property tests in
``tests/test_kernel_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from ..cells.timing import LookupTable


class _TableGroup:
    """Tables sharing one (slews, loads) axis pair, stacked on demand."""

    __slots__ = ("slews", "loads", "values", "_stacked")

    def __init__(self, slews: np.ndarray, loads: np.ndarray) -> None:
        self.slews = slews
        self.loads = loads
        self.values: list[np.ndarray] = []
        self._stacked: np.ndarray | None = None

    def add(self, values: np.ndarray) -> int:
        self.values.append(values)
        self._stacked = None
        return len(self.values) - 1

    @property
    def stacked(self) -> np.ndarray:
        if self._stacked is None:
            self._stacked = np.stack(self.values)
        return self._stacked


class TableStack:
    """A registry of lookup tables addressable as (group, row) pairs.

    ``add`` is idempotent per table object; ``evaluate`` interpolates a
    whole array of (group, row, slew, load) queries at once.  Designs
    characterized on the default grid land in a single group, which is
    the fast path; mixed-axis libraries fall back to one masked pass
    per group.
    """

    def __init__(self) -> None:
        self._groups: list[_TableGroup] = []
        self._group_of_axes: dict[tuple[bytes, bytes], int] = {}
        self._ref_of: dict[int, tuple[int, int]] = {}
        # Keeps registered tables alive so an id() can never be reused
        # by a different table while this stack holds its row.
        self._tables: list[LookupTable] = []

    def add(self, table: LookupTable) -> tuple[int, int]:
        """Register ``table`` (idempotent); returns its (group, row)."""
        ref = self._ref_of.get(id(table))
        if ref is not None:
            return ref
        axes = (table.slews_ps.tobytes(), table.loads_ff.tobytes())
        gid = self._group_of_axes.get(axes)
        if gid is None:
            gid = len(self._groups)
            self._groups.append(_TableGroup(table.slews_ps, table.loads_ff))
            self._group_of_axes[axes] = gid
        row = self._groups[gid].add(table.values)
        ref = (gid, row)
        self._ref_of[id(table)] = ref
        self._tables.append(table)
        return ref

    @property
    def single_group(self) -> bool:
        return len(self._groups) == 1

    def _eval_group(self, group: _TableGroup, rows: np.ndarray,
                    slews: np.ndarray, loads: np.ndarray) -> np.ndarray:
        sl, ld = group.slews, group.loads
        # Clamped cell search — mirrors the scalar path exactly:
        # clamp, bisect_right - 1, cap at the last interior cell.
        s = np.clip(slews, sl[0], sl[-1])
        c = np.clip(loads, ld[0], ld[-1])
        i = np.searchsorted(sl, s, side="right") - 1
        np.clip(i, 0, len(sl) - 2, out=i)
        j = np.searchsorted(ld, c, side="right") - 1
        np.clip(j, 0, len(ld) - 2, out=j)
        s0, s1 = sl[i], sl[i + 1]
        c0, c1 = ld[j], ld[j + 1]
        ts = (s - s0) / (s1 - s0)
        tc = (c - c0) / (c1 - c0)
        v = group.stacked
        top = v[rows, i, j] * (1 - tc) + v[rows, i, j + 1] * tc
        bottom = v[rows, i + 1, j] * (1 - tc) + v[rows, i + 1, j + 1] * tc
        return top * (1 - ts) + bottom * ts

    def evaluate(self, gids: np.ndarray, rows: np.ndarray,
                 slews: np.ndarray, loads: np.ndarray) -> np.ndarray:
        """Interpolate every lane; all four arrays share one shape.

        Lanes may carry garbage rows (padding): the caller masks the
        result, and a padded lane's row must simply be in range (0 is
        always safe).
        """
        slews = np.ascontiguousarray(slews, dtype=float)
        loads = np.broadcast_to(np.asarray(loads, dtype=float), slews.shape)
        if self.single_group:
            return self._eval_group(self._groups[0], rows, slews, loads)
        out = np.zeros(slews.shape)
        for gid, group in enumerate(self._groups):
            mask = gids == gid
            if not mask.any():
                continue
            out[mask] = self._eval_group(
                group, rows[mask], slews[mask], loads[mask])
        return out
