"""Power analysis: activity propagation, switching/internal/leakage."""

from .activity import (
    DEFAULT_INPUT_DENSITY,
    DEFAULT_INPUT_PROBABILITY,
    propagate_activities,
)
from .power import (
    CLOCK_ACTIVITY,
    DEFAULT_ACTIVITY,
    PowerReport,
    analyze_power,
)

__all__ = [
    "CLOCK_ACTIVITY",
    "DEFAULT_ACTIVITY",
    "DEFAULT_INPUT_DENSITY",
    "DEFAULT_INPUT_PROBABILITY",
    "PowerReport",
    "analyze_power",
    "propagate_activities",
]
