"""Power analysis: switching, internal and leakage power.

Standard activity-based analysis at a given operating frequency:

* **switching** power charges every net's extracted capacitance
  (wire + sink pins) at its toggle rate,
* **internal** power spends each cell's characterized per-transition
  energy (short-circuit + internal-node charging),
* **leakage** sums the characterized per-cell leakage (identical
  between FFET and CFET — Table I).

Clock nets toggle twice per cycle; data nets use a default activity
factor, as a vectorless commercial flow would assume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cells import VDD_V, Library
from ..extract import Extraction
from ..netlist import Netlist

#: Data-net toggles per clock cycle (vectorless default).
DEFAULT_ACTIVITY = 0.25
#: Clock nets toggle twice per cycle.
CLOCK_ACTIVITY = 2.0


@dataclass(frozen=True)
class PowerReport:
    """Block power at one operating point."""

    frequency_ghz: float
    switching_mw: float
    internal_mw: float
    leakage_mw: float

    @property
    def dynamic_mw(self) -> float:
        return self.switching_mw + self.internal_mw

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw

    @property
    def efficiency_ghz_per_mw(self) -> float:
        """Frequency per unit power — the Fig. 13 power-efficiency metric."""
        return self.frequency_ghz / self.total_mw


def analyze_power(netlist: Netlist, library: Library, extraction: Extraction,
                  frequency_ghz: float,
                  activity: float = DEFAULT_ACTIVITY,
                  clock: str = "clk",
                  activities: dict[str, float] | None = None) -> PowerReport:
    """Compute block power at ``frequency_ghz``.

    ``activities`` optionally carries per-net toggle rates (e.g. from
    :func:`repro.power.propagate_activities`); nets without an entry
    fall back to the flat ``activity`` factor.
    """
    if frequency_ghz <= 0:
        raise ValueError("frequency must be positive")
    freq_hz = frequency_ghz * 1e9
    activities = activities or {}

    clock_nets = _clock_cone(netlist, library, clock)

    def toggle_rate(net_name: str) -> float:
        if net_name in clock_nets:
            return CLOCK_ACTIVITY
        return activities.get(net_name, activity)

    switching_w = 0.0
    for net_name, net in netlist.nets.items():
        if net_name not in extraction:
            continue
        cap_f = extraction[net_name].total_cap_ff * 1e-15
        toggles = toggle_rate(net_name)
        # E = C * V^2 / 2 per transition.
        switching_w += 0.5 * cap_f * VDD_V * VDD_V * toggles * freq_hz

    internal_w = 0.0
    leakage_w = 0.0
    for inst in netlist.instances.values():
        master = library[inst.master]
        if master.power is None:
            continue
        leakage_w += master.power.leakage_nw * 1e-9
        out_pins = master.output_pins
        if not out_pins:
            continue
        out_net = inst.connections.get(out_pins[0].name)
        load_ff = extraction[out_net].total_cap_ff \
            if out_net and out_net in extraction else 0.0
        if master.is_sequential:
            # Q toggles at the data rate.
            toggles = activities.get(out_net, activity)
        else:
            toggles = toggle_rate(out_net) if out_net else activity
        # Transition energy covers one rise + one fall: halve per toggle.
        energy_fj = master.power.transition_energy_fj(20.0, load_ff) / 2.0
        internal_w += energy_fj * 1e-15 * toggles * freq_hz
        if master.is_sequential:
            # Clock pin switches every cycle regardless of data.
            internal_w += 0.15 * energy_fj * 1e-15 * CLOCK_ACTIVITY * freq_hz

    report = PowerReport(
        frequency_ghz=frequency_ghz,
        switching_mw=switching_w * 1e3,
        internal_mw=internal_w * 1e3,
        leakage_mw=leakage_w * 1e3,
    )
    from ..core.telemetry import current_tracer
    tracer = current_tracer()
    if tracer.enabled:
        tracer.gauge("power.switching_mw", report.switching_mw)
        tracer.gauge("power.internal_mw", report.internal_mw)
        tracer.gauge("power.leakage_mw", report.leakage_mw)
    return report


def _clock_cone(netlist: Netlist, library: Library, clock: str) -> set[str]:
    """All nets in the clock distribution (root plus buffered subnets)."""
    if clock not in netlist.nets:
        return set()
    cone = {clock}
    frontier = [clock]
    while frontier:
        net_name = frontier.pop()
        for inst_name, _pin in netlist.nets[net_name].sinks:
            inst = netlist.instances[inst_name]
            master = library[inst.master]
            if master.is_sequential:
                continue
            out_net = inst.connections.get(master.output.name)
            if out_net and out_net not in cone:
                cone.add(out_net)
                frontier.append(out_net)
    return cone
