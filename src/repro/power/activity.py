"""Switching-activity propagation through the logic network.

Vectorless power analysis normally assumes one flat activity factor;
this module does the standard better thing: propagate signal
probabilities and transition densities from the primary inputs through
each gate's boolean function (under the spatial-independence
approximation), giving per-net toggle rates that
:func:`repro.power.analyze_power` can consume.

For a gate with function ``f``:

* the output 1-probability is the weighted sum of ``f`` over input
  cubes, ``P(f=1) = sum over input vectors v of f(v) * prod p_i(v)``;
* the output transition density follows the Boolean-difference model
  of Najm: ``D(y) = sum_i P(df/dx_i) * D(x_i)``, where
  ``P(df/dx_i)`` is the probability the gate is sensitized to input i.

Flop outputs toggle with the probability their D input differs from
their current value (two-state Markov steady state).
"""

from __future__ import annotations

from itertools import product as iter_product

from ..cells import Library
from ..netlist import Netlist

#: Default signal probability and transition density at primary inputs.
DEFAULT_INPUT_PROBABILITY = 0.5
DEFAULT_INPUT_DENSITY = 0.25


def propagate_activities(netlist: Netlist, library: Library,
                         input_probability: float = DEFAULT_INPUT_PROBABILITY,
                         input_density: float = DEFAULT_INPUT_DENSITY,
                         clock: str = "clk") -> dict[str, float]:
    """Per-net transition densities (toggles per clock cycle).

    Returns a map usable as the ``activities`` argument of
    :func:`repro.power.analyze_power`.  The clock net and the clock
    tree keep their fixed 2-toggles-per-cycle rate there, so they are
    not included here.
    """
    probability: dict[str, float] = {}
    density: dict[str, float] = {}

    for net in netlist.nets.values():
        if net.is_primary_input and not net.is_clock:
            probability[net.name] = input_probability
            density[net.name] = input_density

    # Sequential outputs: steady-state Q probability equals D's, and Q
    # toggles when D differs from Q: D(y) = 2 p (1 - p) under
    # independence.  D's probability is not known before propagation,
    # so seed with the input probability and refine once below.
    flops = netlist.sequential_instances(library)
    for inst in flops:
        master = library[inst.master]
        q_net = inst.connections[master.output.name]
        probability[q_net] = input_probability
        density[q_net] = 2 * input_probability * (1 - input_probability)

    def propagate_once() -> None:
        for inst in netlist.topological_order(library):
            master = library[inst.master]
            fn = master.logic_fn
            outs = master.output_pins
            if not outs or fn is None:
                continue
            out_net = inst.connections[outs[0].name]
            in_pins = [p.name for p in master.input_pins]
            if not in_pins:  # tie cells
                probability[out_net] = 1.0 if master.function == "TIEHI" else 0.0
                density[out_net] = 0.0
                continue
            p_in = [probability.get(inst.connections[p], 0.5)
                    for p in in_pins]
            d_in = [density.get(inst.connections[p], 0.0) for p in in_pins]

            p_out = 0.0
            sensitization = [0.0] * len(in_pins)
            for vector in iter_product((False, True), repeat=len(in_pins)):
                weight = 1.0
                for bit, p in zip(vector, p_in):
                    weight *= p if bit else (1.0 - p)
                if weight == 0.0:
                    continue
                values = dict(zip(in_pins, vector))
                out = bool(fn(values))
                if out:
                    p_out += weight
                # Boolean difference per input: flip input i and see if
                # the output flips.
                for i, name in enumerate(in_pins):
                    flipped = dict(values)
                    flipped[name] = not flipped[name]
                    if bool(fn(flipped)) != out:
                        sensitization[i] += weight
            probability[out_net] = p_out
            density[out_net] = min(
                2.0, sum(s * d for s, d in zip(sensitization, d_in))
            )

    propagate_once()
    # Refine the flop outputs now that D probabilities are known, then
    # re-propagate so downstream logic sees the refined values.
    for inst in flops:
        master = library[inst.master]
        q_net = inst.connections[master.output.name]
        d_prob = probability.get(inst.connections["D"], input_probability)
        probability[q_net] = d_prob
        density[q_net] = 2 * d_prob * (1 - d_prob)
    propagate_once()

    density.pop(clock, None)
    return density
