"""Gate-level netlist data structures, Verilog I/O, equivalence checks."""

from .equiv import EquivalenceReport, check_equivalence
from .netlist import Instance, Net, Netlist
from .stats import NetlistStats, netlist_stats
from .verilog import parse_verilog, write_verilog

__all__ = [
    "EquivalenceReport",
    "Instance",
    "Net",
    "Netlist",
    "NetlistStats",
    "check_equivalence",
    "netlist_stats",
    "parse_verilog",
    "write_verilog",
]
