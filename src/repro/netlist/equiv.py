"""Simulation-based equivalence checking between two netlists.

Used to validate netlist transformations (optimization passes, scan
insertion in functional mode, bridging insertion): both designs are
driven with the same random input/state vectors and their primary
outputs and next-states compared.  Random simulation is not a proof,
but with a few hundred vectors it reliably catches transformation bugs
in practice — and it needs nothing but the boolean functions the cell
library already carries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..cells import Library
from .netlist import Netlist


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of one equivalence run."""

    vectors: int
    mismatches: tuple[str, ...] = ()

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


def _comparable_outputs(a: Netlist, b: Netlist) -> list[str]:
    outs_a = {n.name for n in a.primary_outputs}
    outs_b = {n.name for n in b.primary_outputs}
    return sorted(outs_a & outs_b)


def check_equivalence(a: Netlist, b: Netlist, library: Library,
                      vectors: int = 64, seed: int = 0,
                      extra_inputs: dict[str, bool] | None = None
                      ) -> EquivalenceReport:
    """Compare two netlists on random vectors.

    Both netlists must share primary input names (inputs present in
    only one design get values from ``extra_inputs`` or False) and are
    compared on their common primary outputs and on the next-state of
    flops with matching instance names.
    """
    rng = random.Random(seed)
    inputs_a = {n.name for n in a.primary_inputs if not n.is_clock}
    inputs_b = {n.name for n in b.primary_inputs if not n.is_clock}
    all_inputs = sorted(inputs_a | inputs_b)
    outputs = _comparable_outputs(a, b)
    flops_a = {i.name for i in a.sequential_instances(library)}
    flops_b = {i.name for i in b.sequential_instances(library)}
    shared_flops = sorted(flops_a & flops_b)

    mismatches: list[str] = []
    extra_inputs = extra_inputs or {}
    for _vector in range(vectors):
        stimulus = {
            name: extra_inputs.get(name, rng.random() < 0.5)
            for name in all_inputs
        }
        state = {name: rng.random() < 0.5 for name in shared_flops}
        state_a = dict(state)
        state_a.update({f: rng.random() < 0.5 for f in flops_a - flops_b})
        state_b = dict(state)
        state_b.update({f: rng.random() < 0.5 for f in flops_b - flops_a})

        values_a = a.simulate(library, stimulus, state_a)
        values_b = b.simulate(library, stimulus, state_b)
        for out in outputs:
            if values_a[out] != values_b[out]:
                mismatches.append(f"output {out}")
        next_a = a.next_state(library, stimulus, state_a)
        next_b = b.next_state(library, stimulus, state_b)
        for flop in shared_flops:
            if next_a[flop] != next_b[flop]:
                mismatches.append(f"flop {flop}")
        if mismatches:
            break
    return EquivalenceReport(vectors=vectors,
                             mismatches=tuple(sorted(set(mismatches))))
