"""Structural Verilog round-trip for gate-level netlists.

Supports the flat, named-port-connection subset that synthesis tools
emit::

    module top (clk, a, z);
      input clk;
      input a;
      output z;
      wire n1;
      INVD1 u0 (.A(a), .ZN(n1));
      DFFD1 r0 (.D(n1), .CK(clk), .Q(z));
    endmodule

No behavioural constructs, no busses (bit blasting is the synthesizer's
job), no escaped identifiers.
"""

from __future__ import annotations

import re

from .netlist import Netlist

# Identifiers may carry bus indices ("count[3]") and hierarchy slashes
# ("alu/n12") — generator-produced names kept verbatim in this subset.
_IDENT = r"[A-Za-z_][A-Za-z0-9_$./]*(?:\[[0-9]+\])?"


def write_verilog(netlist: Netlist, clock_nets: set[str] | None = None) -> str:
    """Serialize ``netlist`` as flat structural Verilog."""
    inputs = sorted(n.name for n in netlist.primary_inputs)
    outputs = sorted(n.name for n in netlist.primary_outputs)
    ports = inputs + [o for o in outputs if o not in inputs]
    wires = sorted(
        n.name for n in netlist.nets.values()
        if not n.is_primary_input and not n.is_primary_output
    )

    lines = [f"module {netlist.name} ({', '.join(ports)});"]
    for name in inputs:
        lines.append(f"  input {name};")
    for name in outputs:
        if name not in inputs:
            lines.append(f"  output {name};")
    for name in wires:
        lines.append(f"  wire {name};")
    lines.append("")
    for inst in sorted(netlist.instances.values(), key=lambda i: i.name):
        conns = ", ".join(
            f".{pin}({net})" for pin, net in sorted(inst.connections.items())
        )
        lines.append(f"  {inst.master} {inst.name} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def parse_verilog(text: str) -> Netlist:
    """Parse the structural subset written by :func:`write_verilog`."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)

    module_match = re.search(
        rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", text, flags=re.DOTALL
    )
    if module_match is None:
        raise ValueError("no module declaration found")
    netlist = Netlist(module_match.group(1))
    body = text[module_match.end():]
    end = body.find("endmodule")
    if end < 0:
        raise ValueError("missing endmodule")
    body = body[:end]

    statements = [s.strip() for s in body.split(";") if s.strip()]
    for stmt in statements:
        kind_match = re.match(rf"(input|output|wire)\s+(.+)", stmt, flags=re.DOTALL)
        if kind_match:
            kind, names = kind_match.groups()
            for name in re.findall(_IDENT, names):
                if kind == "input":
                    netlist.add_net(name, primary_input=True)
                elif kind == "output":
                    netlist.add_net(name, primary_output=True)
                else:
                    netlist.add_net(name)
            continue

        inst_match = re.match(
            rf"({_IDENT})\s+({_IDENT})\s*\((.*)\)\s*$", stmt, flags=re.DOTALL
        )
        if inst_match is None:
            raise ValueError(f"unparseable statement: {stmt[:80]!r}")
        master, inst_name, conn_text = inst_match.groups()
        connections = {}
        for pin, net in re.findall(
            rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)", conn_text
        ):
            connections[pin] = net
        netlist.add_instance(inst_name, master, connections)
    return netlist
