"""Netlist statistics: the numbers a synthesis report prints."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import Library
from .netlist import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics of one gate-level netlist."""

    instances: int
    nets: int
    flops: int
    combinational: int
    cell_area_um2: float
    cell_histogram: dict[str, int]
    logic_depth: int
    max_fanout: int
    mean_fanout: float
    primary_inputs: int
    primary_outputs: int

    def format(self) -> str:
        lines = [
            f"instances: {self.instances} "
            f"({self.flops} flops, {self.combinational} combinational)",
            f"nets: {self.nets}  PIs: {self.primary_inputs}  "
            f"POs: {self.primary_outputs}",
            f"cell area: {self.cell_area_um2:.2f} um2",
            f"logic depth: {self.logic_depth}  "
            f"fanout max/mean: {self.max_fanout}/{self.mean_fanout:.1f}",
            "cell mix:",
        ]
        for master, count in sorted(self.cell_histogram.items(),
                                    key=lambda kv: -kv[1]):
            lines.append(f"  {master:<12}{count:>6}")
        return "\n".join(lines)


def netlist_stats(netlist: Netlist, library: Library) -> NetlistStats:
    """Compute :class:`NetlistStats` (requires a bound netlist)."""
    depth: dict[str, int] = {}
    max_depth = 0
    for inst in netlist.topological_order(library):
        master = library[inst.master]
        level = 0
        for pin in master.input_pins:
            net = netlist.nets[inst.connections[pin.name]]
            if net.driver is not None:
                level = max(level, depth.get(net.driver[0], 0))
        depth[inst.name] = level + 1
        max_depth = max(max_depth, level + 1)

    fanouts = [net.fanout for net in netlist.nets.values() if net.fanout]
    flops = netlist.sequential_instances(library)
    return NetlistStats(
        instances=len(netlist.instances),
        nets=len(netlist.nets),
        flops=len(flops),
        combinational=len(netlist.instances) - len(flops),
        cell_area_um2=netlist.total_cell_area_nm2(library) / 1e6,
        cell_histogram=netlist.cell_counts(),
        logic_depth=max_depth,
        max_fanout=max(fanouts) if fanouts else 0,
        mean_fanout=sum(fanouts) / len(fanouts) if fanouts else 0.0,
        primary_inputs=len(netlist.primary_inputs),
        primary_outputs=len(netlist.primary_outputs),
    )
