"""Gate-level netlist: instances, nets, connectivity and validation."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..cells import Library


@dataclass
class Instance:
    """One placed-or-placeable cell instance."""

    name: str
    master: str                       # cell master name in the library
    connections: dict[str, str] = field(default_factory=dict)  # pin -> net

    def net_on(self, pin: str) -> str:
        try:
            return self.connections[pin]
        except KeyError:
            raise KeyError(f"instance {self.name}: pin {pin!r} unconnected") from None


@dataclass
class Net:
    """One logical net: a single driver and any number of sinks.

    The driver is either a primary input (``driver is None``) or an
    ``(instance_name, pin_name)`` pair; sinks are such pairs plus
    optionally a primary output.
    """

    name: str
    driver: tuple[str, str] | None = None
    sinks: list[tuple[str, str]] = field(default_factory=list)
    is_primary_input: bool = False
    is_primary_output: bool = False
    is_clock: bool = False

    @property
    def fanout(self) -> int:
        return len(self.sinks) + (1 if self.is_primary_output else 0)

    @property
    def degree(self) -> int:
        """Pin count of the net (driver + sinks)."""
        return self.fanout + (0 if self.is_primary_input else 1)


class Netlist:
    """A flat gate-level netlist bound to a cell library by name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instances: dict[str, Instance] = {}
        self.nets: dict[str, Net] = {}
        #: Free-form metadata attached by generators (e.g. the RISC-V
        #: generator records which nets carry the PC and register file).
        self.attributes: dict[str, object] = {}
        #: Structural revision, bumped on every connectivity mutation
        #: (and on :meth:`bind`, which every rewiring pass must call).
        #: Consumers like the STA level-graph prep cache key on it.
        self.rev = 0

    # -- construction -------------------------------------------------------
    def add_net(self, name: str, *, primary_input: bool = False,
                primary_output: bool = False, clock: bool = False) -> Net:
        if name in self.nets:
            net = self.nets[name]
            net.is_primary_input = net.is_primary_input or primary_input
            net.is_primary_output = net.is_primary_output or primary_output
            net.is_clock = net.is_clock or clock
            return net
        net = Net(name, is_primary_input=primary_input,
                  is_primary_output=primary_output, is_clock=clock)
        self.nets[name] = net
        return net

    def add_instance(self, name: str, master: str,
                     connections: Mapping[str, str]) -> Instance:
        if name in self.instances:
            raise ValueError(f"duplicate instance {name!r}")
        inst = Instance(name, master, dict(connections))
        self.instances[name] = inst
        self.rev = getattr(self, "rev", 0) + 1
        for pin, net_name in inst.connections.items():
            self.add_net(net_name)
        return inst

    def set_driver(self, net_name: str, instance: str, pin: str) -> None:
        net = self.nets[net_name]
        if net.driver is not None:
            raise ValueError(f"net {net_name!r} already driven by {net.driver}")
        net.driver = (instance, pin)

    def bind(self, library: Library) -> None:
        """Resolve drivers/sinks from pin directions; validate connectivity.

        Must be called once after construction (and again if instances
        are re-mastered).  Raises on missing masters, unconnected pins,
        multiply-driven or undriven nets.
        """
        self.rev = getattr(self, "rev", 0) + 1
        for net in self.nets.values():
            net.driver = None
            net.sinks = []
        for inst in self.instances.values():
            master = library[inst.master]
            for pin in master.pins.values():
                net_name = inst.connections.get(pin.name)
                if net_name is None:
                    raise ValueError(
                        f"instance {inst.name} ({inst.master}): "
                        f"pin {pin.name} unconnected"
                    )
                net = self.nets[net_name]
                if pin.is_output:
                    if net.driver is not None or net.is_primary_input:
                        raise ValueError(f"net {net_name!r} multiply driven")
                    net.driver = (inst.name, pin.name)
                else:
                    net.sinks.append((inst.name, pin.name))
                    if pin.is_clock:
                        net.is_clock = True
        # Drop fully dangling nets (e.g. placeholder nets left behind by
        # rewiring passes like CTS), then validate drivers.
        dangling = [
            name for name, net in self.nets.items()
            if net.driver is None and not net.sinks
            and not net.is_primary_input and not net.is_primary_output
        ]
        for name in dangling:
            del self.nets[name]
        for net in self.nets.values():
            if net.driver is None and not net.is_primary_input:
                raise ValueError(f"net {net.name!r} has no driver")

    # -- queries ----------------------------------------------------------------
    @property
    def primary_inputs(self) -> list[Net]:
        return [n for n in self.nets.values() if n.is_primary_input]

    @property
    def primary_outputs(self) -> list[Net]:
        return [n for n in self.nets.values() if n.is_primary_output]

    def sequential_instances(self, library: Library) -> list[Instance]:
        return [i for i in self.instances.values()
                if library[i.master].is_sequential]

    def combinational_instances(self, library: Library) -> list[Instance]:
        return [i for i in self.instances.values()
                if not library[i.master].is_sequential]

    def cell_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for inst in self.instances.values():
            counts[inst.master] = counts.get(inst.master, 0) + 1
        return counts

    def total_cell_area_nm2(self, library: Library) -> float:
        return sum(library[i.master].area_nm2(library.tech)
                   for i in self.instances.values())

    # -- topological traversal --------------------------------------------------
    def topological_order(self, library: Library) -> list[Instance]:
        """Combinational instances in dependency order.

        Sequential outputs and primary inputs are sources.  Raises
        ``ValueError`` on a combinational loop.
        """
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        for inst in self.instances.values():
            master = library[inst.master]
            if master.is_sequential:
                continue
            count = 0
            for pin in master.input_pins:
                net = self.nets[inst.connections[pin.name]]
                if net.driver is None:
                    continue
                drv_inst = self.instances[net.driver[0]]
                if library[drv_inst.master].is_sequential:
                    continue
                count += 1
                dependents.setdefault(drv_inst.name, []).append(inst.name)
            indegree[inst.name] = count

        ready = deque(sorted(n for n, d in indegree.items() if d == 0))
        order: list[Instance] = []
        while ready:
            name = ready.popleft()
            order.append(self.instances[name])
            for dep in dependents.get(name, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(indegree):
            raise ValueError("combinational loop detected")
        return order

    # -- simulation (functional verification) --------------------------------
    def simulate(self, library: Library, inputs: Mapping[str, bool],
                 state: Mapping[str, bool] | None = None) -> dict[str, bool]:
        """Evaluate all combinational logic for one input/state vector.

        ``inputs`` maps primary-input net names to values; ``state`` maps
        sequential instance names to their current Q values.  Returns the
        value of every net.  Clock nets are not evaluated.
        """
        values: dict[str, bool] = {}
        for net in self.primary_inputs:
            if net.is_clock:
                continue
            if net.name not in inputs:
                raise KeyError(f"missing value for primary input {net.name!r}")
            values[net.name] = bool(inputs[net.name])
        state = state or {}
        for inst in self.sequential_instances(library):
            master = library[inst.master]
            outs = master.output_pins
            for out_pin in outs:
                # A flop's state is keyed by instance name; multi-output
                # sequential cells (hard macros) key per (inst, pin).
                key = inst.name if len(outs) == 1 else (inst.name, out_pin.name)
                values[inst.connections[out_pin.name]] = \
                    bool(state.get(key, False))

        for inst in self.topological_order(library):
            master = library[inst.master]
            fn = master.logic_fn
            if fn is None:
                raise ValueError(f"{master.name} has no logic function")
            pin_values = {
                p.name: values[inst.connections[p.name]]
                for p in master.input_pins
            }
            values[inst.connections[master.output.name]] = bool(fn(pin_values))
        return values

    def next_state(self, library: Library, inputs: Mapping[str, bool],
                   state: Mapping[str, bool] | None = None) -> dict[str, bool]:
        """One clock tick: the D values every flop would capture."""
        values = self.simulate(library, inputs, state)
        new_state = {}
        for inst in self.sequential_instances(library):
            d_net = inst.connections.get("D")
            if d_net is not None:
                new_state[inst.name] = values[d_net]
        return new_state

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Netlist({self.name!r}, {len(self.instances)} instances, "
                f"{len(self.nets)} nets)")
