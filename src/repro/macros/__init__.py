"""Parameterized SRAM/register-file macro compiler.

Every FFET-vs-CFET experiment so far ran flip-flop register files; the
paper's block-level PPA claims only become credible with hard macros
exerting realistic pin and blockage pressure on both wafer sides.  This
module generates such macros the way OpenNVRAM's modular compiler and
rad_gen's ``sram_compiler.py`` do: a bitcell array, a row decoder and
sense/driver periphery are *composed* into one hard block with

* a footprint quantized to placement sites and rows (so floorplanning,
  legalization blockages and DEF emission all stay in site units),
* a **dual-sided pin map** — frontside data/address pins on the macro
  boundary, a backside clock pin under FFET (the macro's internal clock
  mesh taps the backside distribution directly, per the dual-sided CTS
  scenario), dual-sided Q outputs via the Drain Merge,
* obstruction rectangles over the metal layers the internal array
  consumes, on both sides under FFET, and
* characterized CK->Q timing, setup constraints and power models scaled
  from the array dimensions, so STA/power treat the macro like any
  other sequential master.

The compiled :class:`MacroMaster` *is a* :class:`~repro.cells.CellMaster`
(flagged ``is_macro``), so the netlist, the stage-key chain and the
LEF/DEF writers need no parallel type hierarchy; physical stages test
``getattr(master, "is_macro", False)`` and consult the extra geometry.

Determinism: :func:`compile_macro` is a pure function of
``(spec, tech)``; the master name encodes the parameters (e.g.
``SRAM32X16``) so the netlist fingerprint — and therefore every stage
key — captures the macro configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cells import (
    CellMaster,
    LookupTable,
    Pin,
    PinDirection,
    PowerModel,
    SequentialTiming,
    TimingArc,
    dual_pin,
    front_pin,
)
from ..tech import Side, TechNode

#: Placement sites one bitcell column occupies.
BITCELL_SITES = 1
#: Sites reserved for the row decoder strip on the macro's left edge.
DECODER_SITES = 4
#: Cell rows of sense-amp / write-driver periphery under the array.
PERIPHERY_ROWS = 2
#: Column-mux factor folding tall arrays into wider, shorter ones.
FOLD_THRESHOLD_WORDS = 16
FOLD_MUX = 4

#: Fraction of the outline covered by the *upper* obstruction layer
#: (the lower layer blocks the full footprint).
UPPER_OBS_FRACTION = 0.8


@dataclass(frozen=True)
class MacroSpec:
    """Size parameters of one SRAM/register-file macro."""

    words: int = 32
    bits: int = 16

    def __post_init__(self) -> None:
        if self.words < 4 or self.words & (self.words - 1):
            raise ValueError("macro words must be a power of two >= 4")
        if not 1 <= self.bits <= 256:
            raise ValueError("macro bits must be in [1, 256]")

    @property
    def addr_bits(self) -> int:
        return int(math.log2(self.words))

    @property
    def name(self) -> str:
        return f"SRAM{self.words}X{self.bits}"


@dataclass
class MacroMaster(CellMaster):
    """A hard macro: a cell master with site-quantized geometry,
    boundary pin offsets and routing obstructions.

    ``pin_offsets`` maps pin name to an (dx_nm, dy_nm) offset **from the
    macro center** — the router adds it to the placed center location to
    target the physical pin shape.  ``obstructions`` are
    ``(layer_name, x0, y0, x1, y1)`` rectangles in nm **relative to the
    macro origin** (lower-left corner).
    """

    is_macro = True

    width_sites: int = 0
    height_rows: int = 0
    pin_offsets: dict[str, tuple[float, float]] = field(default_factory=dict)
    obstructions: tuple = ()


def macro_name(spec: MacroSpec) -> str:
    """The deterministic master name a spec compiles to."""
    return spec.name


def _folded_array(spec: MacroSpec) -> tuple[int, int]:
    """(array rows, bitcell columns) after column-mux folding."""
    mux = FOLD_MUX if spec.words >= FOLD_THRESHOLD_WORDS else 1
    return spec.words // mux, spec.bits * mux


def compile_macro(spec: MacroSpec, tech: TechNode) -> MacroMaster:
    """Compose bitcell array + decoder + periphery into a hard macro."""
    array_rows, array_cols = _folded_array(spec)
    width_sites = DECODER_SITES + array_cols * BITCELL_SITES
    height_rows = array_rows + PERIPHERY_ROWS

    cpp = tech.cpp_nm
    row_nm = tech.cell_height_nm
    width_nm = width_sites * cpp
    height_nm = height_rows * row_nm

    # -- pin map ------------------------------------------------------------
    # Inputs (CK, WE, address, data) sit on the bottom edge, outputs on
    # the top edge, all on the CPP grid.  The CK pin routes on the
    # backside under FFET (the macro clock mesh taps the backside
    # distribution); data/address stay frontside, Q is dual-sided via
    # the Drain Merge — the paper's pin-map asymmetry in miniature.
    dual = tech.dual_sided_pins
    pins: dict[str, Pin] = {}
    pin_offsets: dict[str, tuple[float, float]] = {}

    def edge_x(index: int, count: int) -> float:
        """On-grid x (nm from origin) of the index-th of count edge pins."""
        step = max(1, width_sites // (count + 1))
        site = min((index + 1) * step, width_sites - 1)
        return site * cpp

    bottom = (["CK", "WE"]
              + [f"A{i}" for i in range(spec.addr_bits)]
              + [f"D{i}" for i in range(spec.bits)])
    for k, name in enumerate(bottom):
        if name == "CK":
            sides = frozenset({Side.BACK}) if dual else frozenset({Side.FRONT})
            pins[name] = Pin(name, PinDirection.CLOCK, sides, cap_ff=0.8)
        elif name == "WE":
            pins[name] = front_pin(name, PinDirection.INPUT, cap_ff=0.6)
        else:
            pins[name] = front_pin(name, PinDirection.INPUT, cap_ff=0.4)
        pin_offsets[name] = (edge_x(k, len(bottom)) - width_nm / 2,
                             -height_nm / 2)
    for k in range(spec.bits):
        name = f"Q{k}"
        pins[name] = (dual_pin(name, PinDirection.OUTPUT) if dual
                      else front_pin(name, PinDirection.OUTPUT))
        pin_offsets[name] = (edge_x(k, spec.bits) - width_nm / 2,
                             height_nm / 2)

    # -- obstructions -------------------------------------------------------
    # The internal array consumes the two lowest metals of each side it
    # occupies: the lowest fully, the next over the array core (pins on
    # the boundary ring stay accessible).
    inset_x = width_nm * (1.0 - UPPER_OBS_FRACTION) / 2
    inset_y = height_nm * (1.0 - UPPER_OBS_FRACTION) / 2
    obstructions = [
        ("FM1", 0.0, 0.0, width_nm, height_nm),
        ("FM2", inset_x, inset_y, width_nm - inset_x, height_nm - inset_y),
    ]
    if dual:
        obstructions += [
            ("BM1", 0.0, 0.0, width_nm, height_nm),
            ("BM2", inset_x, inset_y, width_nm - inset_x, height_nm - inset_y),
        ]

    # -- characterization ---------------------------------------------------
    # Access time grows with decoder depth and wordline/bitline length;
    # the coefficients track the library's D1 gate delays so the macro
    # is slow-but-plausible relative to the surrounding logic.
    access_ps = 30.0 + 4.0 * spec.addr_bits + 0.08 * spec.bits

    def q_delay(slew_ps: float, load_ff: float) -> float:
        return access_ps + 0.05 * slew_ps + 1.5 * load_ff

    def q_transition(slew_ps: float, load_ff: float) -> float:
        return 6.0 + 0.04 * slew_ps + 1.0 * load_ff

    delay_table = LookupTable.from_function(q_delay)
    trans_table = LookupTable.from_function(q_transition)
    arcs = [
        TimingArc(from_pin="CK", to_pin=f"Q{i}",
                  rise_delay=delay_table, fall_delay=delay_table,
                  rise_transition=trans_table, fall_transition=trans_table,
                  unate="x")
        for i in range(spec.bits)
    ]

    bitcells = spec.words * spec.bits
    energy = LookupTable.from_function(
        lambda s, l: 0.02 * spec.bits * math.sqrt(spec.words) + 0.05 * l)
    power = PowerModel(rise_energy=energy, fall_energy=energy,
                       leakage_nw=0.05 * bitcells)
    sequential = SequentialTiming(setup_ps=20.0 + 2.0 * spec.addr_bits,
                                  hold_ps=2.0)

    return MacroMaster(
        name=macro_name(spec),
        function="SRAM",
        drive=1.0,
        width_cpp=float(width_sites),
        height_tracks=height_rows * tech.cell_height_tracks,
        pins=pins,
        arcs=arcs,
        power=power,
        sequential=sequential,
        n_transistors=6 * bitcells + 12 * width_sites,
        width_sites=width_sites,
        height_rows=height_rows,
        pin_offsets=pin_offsets,
        obstructions=tuple(obstructions),
    )


def attach_macros(netlist, library) -> list[MacroMaster]:
    """Compile and register the macros a netlist declares.

    Design generators record their macro instances in
    ``netlist.attributes["macros"]`` as ``{instance_name: MacroSpec}``.
    This runs before :meth:`~repro.netlist.Netlist.bind` — both on cold
    execution and on stage-store restore, because the library artifact
    is captured at the library stage, before any macros exist.
    Idempotent: equal specs compile to equal-named masters and the
    existing master is reused.
    """
    specs = netlist.attributes.get("macros")
    if not specs:
        return []
    attached: list[MacroMaster] = []
    for inst_name in sorted(specs):
        spec = specs[inst_name]
        name = macro_name(spec)
        master = library.masters.get(name)
        if master is None:
            master = compile_macro(spec, library.tech)
            library.add(master)
        attached.append(master)
    return attached


__all__ = [
    "BITCELL_SITES",
    "DECODER_SITES",
    "PERIPHERY_ROWS",
    "MacroMaster",
    "MacroSpec",
    "attach_macros",
    "compile_macro",
    "macro_name",
]
