"""Stage-level flow telemetry: spans, counters and structured traces.

The flow (``core/flow.py``) is the paper's ten-stage pipeline, but a
run is otherwise an opaque wall time.  This module provides the
observability layer every stage and hot subsystem reports into:

* :class:`Tracer` — context-manager spans on the monotonic clock
  (``with tracer.span("placement"): ...``), arbitrarily nested, plus
  typed **counters** (monotonic accumulators: cache hits, bridges
  inserted) and **gauges** (last-value metrics: cells placed, routed
  wirelength per side, DRC violations);
* :class:`NullTracer` — the default.  Every instrumentation point goes
  through :func:`current_tracer`, which hands back a shared no-op
  singleton unless a real tracer was :func:`activate`\\ d, so the hot
  paths stay allocation-free when telemetry is off;
* :class:`Trace` — the finished, picklable record of one run.  Worker
  processes serialize traces back to the parent sweep runner, which
  merges them into a sweep-level stage breakdown;
* a JSONL codec (begin/end events, chrome-trace style) written per run
  under ``--trace <dir>`` and read back by ``repro trace report``;
* :func:`aggregate_stage_times` / :func:`format_stage_table` — the
  per-stage wall-time/percentage table for a run or a whole sweep.

Telemetry is strictly read-only with respect to the flow: tracing a
run must never change its :class:`~repro.core.ppa.PPAResult`
(property-tested in ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "aggregate_stage_times",
    "counter_total",
    "current_tracer",
    "format_stage_table",
    "load_trace",
    "load_traces",
    "merge_counters",
]


@dataclass
class Span:
    """One timed region: name, interval, and position in the nest."""

    name: str
    start_s: float
    end_s: float | None = None
    depth: int = 0
    parent: int | None = None  # index of the enclosing span, if any
    index: int = 0

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        return 0.0 if self.end_s is None else self.end_s - self.start_s


@dataclass
class Trace:
    """The finished telemetry record of one run — plain, picklable data."""

    label: str = ""
    spans: list[Span] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    total_s: float = 0.0

    # -- queries -------------------------------------------------------------
    def stage_list(self) -> list[str]:
        """Names of the top-level (depth-0) spans, in execution order."""
        return [s.name for s in self.spans if s.depth == 0]

    def stage_times(self) -> dict[str, float]:
        """Top-level span durations, summed per name, in first-seen order."""
        times: dict[str, float] = {}
        for s in self.spans:
            if s.depth == 0:
                times[s.name] = times.get(s.name, 0.0) + s.duration_s
        return times

    def span_times(self) -> dict[str, float]:
        """All span durations (any depth), summed per name."""
        times: dict[str, float] = {}
        for s in self.spans:
            times[s.name] = times.get(s.name, 0.0) + s.duration_s
        return times

    # -- JSONL codec ---------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize as begin/end events plus a trailer, one JSON per line."""
        lines = [json.dumps({"ev": "trace", "label": self.label})]
        events: list[tuple[float, int, dict]] = []
        for s in self.spans:
            events.append((s.start_s, 0, {
                "ev": "b", "id": s.index, "name": s.name, "t": s.start_s,
                "depth": s.depth, "parent": s.parent,
            }))
            if s.closed:
                events.append((s.end_s, 1, {
                    "ev": "e", "id": s.index, "t": s.end_s,
                }))
        # Stable interleaving: by time, begins before ends at equal stamps
        # of *different* spans, but a zero-duration span still closes
        # immediately after it opens thanks to the id tiebreak.
        events.sort(key=lambda e: (e[0], e[1], e[2]["id"]))
        lines.extend(json.dumps(payload) for _, _, payload in events)
        lines.append(json.dumps({
            "ev": "end", "total_s": self.total_s,
            "counters": self.counters, "gauges": self.gauges,
        }))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Rebuild a trace from its JSONL form; inverse of :meth:`to_jsonl`."""
        trace = cls()
        open_spans: dict[int, Span] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            ev = payload.get("ev")
            if ev == "trace":
                trace.label = payload.get("label", "")
            elif ev == "b":
                span = Span(name=payload["name"], start_s=payload["t"],
                            depth=payload.get("depth", 0),
                            parent=payload.get("parent"),
                            index=payload["id"])
                open_spans[span.index] = span
                trace.spans.append(span)
            elif ev == "e":
                span = open_spans.pop(payload["id"], None)
                if span is None:
                    raise ValueError(
                        f"trace end event for unknown span id {payload['id']}")
                span.end_s = payload["t"]
            elif ev == "end":
                trace.total_s = payload.get("total_s", 0.0)
                trace.counters = dict(payload.get("counters", {}))
                trace.gauges = dict(payload.get("gauges", {}))
        trace.spans.sort(key=lambda s: s.index)
        return trace

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path


class Tracer:
    """Collects spans, counters and gauges for one run.

    Spans nest through the context manager::

        tracer = Tracer(label="FFET FM12BM12")
        with tracer.span("routing"):
            with tracer.span("route.front"):
                ...
        tracer.count("cache.hits")
        tracer.gauge("placement.cells", 1200)
        trace = tracer.finish()

    Times come from :func:`time.perf_counter` relative to tracer
    creation, so durations are monotonic and unaffected by wall-clock
    adjustments.  A tracer is single-threaded by design — sweep
    parallelism is process-based, and each worker owns its tracer.
    """

    enabled = True

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._origin = time.perf_counter()
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        span = Span(name=name, start_s=self._now(),
                    depth=len(self._stack),
                    parent=self._stack[-1] if self._stack else None,
                    index=len(self.spans))
        self.spans.append(span)
        self._stack.append(span.index)
        try:
            yield span
        finally:
            # ``finish()`` may already have closed an abandoned span and
            # cleared the stack; only unwind what is still ours.
            if span.end_s is None:
                span.end_s = self._now()
            if self._stack and self._stack[-1] == span.index:
                self._stack.pop()

    def zero_span(self, name: str) -> Span:
        """Record an instantaneous span (e.g. a cache hit served a run)."""
        now = self._now()
        span = Span(name=name, start_s=now, end_s=now,
                    depth=len(self._stack),
                    parent=self._stack[-1] if self._stack else None,
                    index=len(self.spans))
        self.spans.append(span)
        return span

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value metric."""
        self.gauges[name] = value

    def finish(self) -> Trace:
        """Close out and return the (picklable) trace.

        Open spans are closed at the current time, so a trace is always
        well-formed even after an exception unwound the flow.
        """
        now = self._now()
        for span in self.spans:
            if not span.closed:
                span.end_s = now
        self._stack.clear()
        return Trace(label=self.label, spans=self.spans,
                     counters=dict(self.counters),
                     gauges=dict(self.gauges), total_s=now)


class NullTracer:
    """No-op tracer with the full :class:`Tracer` API.

    ``span()`` hands back one shared context manager and the metric
    methods return immediately, so instrumented hot paths cost a method
    call and nothing else when telemetry is off.
    """

    enabled = False

    def span(self, name: str):
        return _NULL_SPAN_CM

    def zero_span(self, name: str) -> None:
        return None

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def finish(self) -> Trace:
        return Trace()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CM = _NullSpanContext()

#: The shared default tracer: everything is a no-op.
NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER


def current_tracer() -> Tracer | NullTracer:
    """The tracer instrumentation points report into (default: no-op)."""
    return _current


@contextmanager
def activate(tracer: Tracer | NullTracer | None) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` as the current tracer for the ``with`` body."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    try:
        yield _current
    finally:
        _current = previous


# -- aggregation and reporting ----------------------------------------------

def merge_counters(into: dict[str, float],
                   counters: dict[str, float]) -> dict[str, float]:
    """Accumulate one run's counters into a sweep-level total."""
    for name, value in counters.items():
        into[name] = into.get(name, 0) + value
    return into


def counter_total(counters: dict[str, float], prefix: str) -> float:
    """Sum every counter under a dotted prefix.

    ``counter_total(c, "stage_cache.singleflight")`` is the total
    cross-process coordination activity regardless of event kind; the
    job server's ``/stats`` and the CI smoke checks aggregate this way.
    """
    if not prefix.endswith("."):
        prefix += "."
    return sum(value for name, value in counters.items()
               if name.startswith(prefix))


def aggregate_stage_times(traces: Iterable[Trace]) -> dict[str, float]:
    """Sum top-level stage durations across runs, first-seen order."""
    totals: dict[str, float] = {}
    for trace in traces:
        for name, seconds in trace.stage_times().items():
            totals[name] = totals.get(name, 0.0) + seconds
    return totals


def format_stage_table(stage_times: dict[str, float],
                       title: str = "stage breakdown") -> str:
    """Render the per-stage time/percentage table ``trace report`` prints."""
    total = sum(stage_times.values())
    width = max([len(n) for n in stage_times] + [len("stage")])
    lines = [f"{title} ({total:.3f}s total)",
             f"{'stage':<{width}}  {'time_s':>9}  {'share':>6}"]
    for name, seconds in stage_times.items():
        share = seconds / total if total > 0 else 0.0
        lines.append(f"{name:<{width}}  {seconds:>9.3f}  {share:>6.1%}")
    return "\n".join(lines)


def load_trace(path: str | Path) -> Trace:
    """Read one ``*.jsonl`` trace file."""
    return Trace.from_jsonl(Path(path).read_text())


def load_traces(path: str | Path) -> list[Trace]:
    """Read a trace file or every ``*.jsonl`` trace in a directory."""
    path = Path(path)
    if path.is_dir():
        return [load_trace(p) for p in sorted(path.glob("*.jsonl"))]
    return [load_trace(path)]
