"""Flow configuration: one P&R + PPA experiment's knobs."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cells import pin_density_label
from ..tech import TechNode, make_cfet_node, make_ffet_node


@dataclass(frozen=True)
class FlowConfig:
    """Everything that defines one implementation run.

    The defaults correspond to the paper's FFET FM12BM12 baseline with
    evenly distributed input pins at 1.5 GHz synthesis target.
    """

    arch: str = "ffet"                  # "ffet" | "cfet"
    front_layers: int = 12              # FMn
    back_layers: int = 12               # BMn (0 = single-sided signals)
    backside_pin_fraction: float = 0.5  # FP(1-x) BP(x)
    utilization: float = 0.70
    aspect_ratio: float = 1.0
    target_frequency_ghz: float = 1.5
    seed: int = 0
    clock: str = "clk"
    gcell_tracks: int = 16
    max_fanout: int = 20
    #: Clock tree synthesis: ``"single"`` keeps the whole tree on
    #: frontside metal; ``"dual"`` partitions tree nets between the FM*
    #: and BM* stacks (FFET with backside layers only).
    cts_mode: str = "single"
    #: Target share of clock wirelength on backside metal in dual mode.
    cts_back_fraction: float = 0.5
    activity: float = 0.25
    #: Keep-out margin (in CPP) legalization enforces around each hard
    #: macro the design instantiates; no effect on macro-free designs.
    macro_halo_cpp: int = 2
    allow_bridging: bool = False
    power_stripe_pitch_cpp: int | None = None
    rrr_iterations: int = 8
    sizing_iterations: int = 12
    #: Optional greedy detailed-placement refinement after legalization.
    refine_placement: bool = False
    refine_iterations: int = 2000
    #: Free-form annotation for bookkeeping (sweep tags, experiment ids).
    #: Never affects the flow, and is excluded from the result-cache key:
    #: two configs differing only in ``tag`` share one cache entry.
    tag: str = ""

    def __post_init__(self) -> None:
        if self.arch not in ("ffet", "cfet"):
            raise ValueError(f"unknown arch {self.arch!r}")
        if self.arch == "cfet" and self.back_layers:
            raise ValueError("CFET has no backside signal routing")
        if not 0.0 <= self.backside_pin_fraction <= 1.0:
            raise ValueError("backside_pin_fraction must be in [0, 1]")
        if self.arch == "cfet" and self.backside_pin_fraction:
            raise ValueError("CFET pins are frontside-only")
        if self.back_layers == 0 and self.backside_pin_fraction:
            raise ValueError(
                "backside pins need backside routing layers (or bridging)"
            )
        if self.macro_halo_cpp < 0:
            raise ValueError("macro_halo_cpp must be non-negative")
        if self.cts_mode not in ("single", "dual"):
            raise ValueError(f"unknown cts_mode {self.cts_mode!r}")
        if not 0.0 <= self.cts_back_fraction <= 1.0:
            raise ValueError("cts_back_fraction must be in [0, 1]")
        if self.cts_mode == "dual" and (self.arch != "ffet"
                                        or not self.back_layers):
            raise ValueError(
                "dual-sided CTS needs FFET with backside routing layers"
            )

    @property
    def target_period_ps(self) -> float:
        return 1000.0 / self.target_frequency_ghz

    def make_tech(self) -> TechNode:
        if self.arch == "cfet":
            return make_cfet_node(self.front_layers)
        return make_ffet_node(self.front_layers, self.back_layers)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``FFET FM6BM6 FP0.5BP0.5``."""
        tech = "FFET" if self.arch == "ffet" else "CFET"
        layers = f"FM{self.front_layers}" + (
            f"BM{self.back_layers}" if self.back_layers else ""
        )
        parts = [tech, layers]
        if self.arch == "ffet" and self.back_layers:
            parts.append(pin_density_label(self.backside_pin_fraction))
        return " ".join(parts)

    def with_(self, **overrides) -> "FlowConfig":
        """A modified copy, e.g. ``config.with_(utilization=0.8)``."""
        return replace(self, **overrides)
