"""Declarative stage graph and per-stage artifact store for the flow.

The flow (:mod:`repro.core.flow`) used to be a 370-line monolith; it is
now a walk over a :class:`StageGraph` of :class:`Stage` objects.  Each
stage declares

* the :class:`~repro.core.config.FlowConfig` **fields it reads**
  (``config_fields``) — e.g. ``placement`` reads ``seed`` but not
  ``front_layers``/``back_layers``;
* its **upstream stages** (``upstream``) — the artifacts it consumes;
* an ``execute`` function that runs the real stage body and returns a
  picklable artifact, and a ``restore`` function that rebuilds the
  walk's state from a stored artifact (re-running guard checks and
  re-emitting result gauges).

Every stage gets a content-addressed **stage key**
(:func:`stage_key`): a SHA-256 over the stage name, its config-field
slice, its upstream stages' keys, the netlist fingerprint (for stages
that consume the netlist) and the code fingerprint.  Chaining upstream
keys makes the slice transitive — ``routing``'s key changes whenever
any field read by any stage before it changes — so two configs share a
stage's artifact exactly when every input that can reach that stage is
identical.  That is what lets a Table III layer-split enumeration
place once and route N times: ``front_layers``/``back_layers`` first
appear in ``routing``'s slice, so every split shares the
``library`` … ``legalization`` prefix.

The :class:`StageStore` persists artifacts in the
:class:`~repro.core.cache.FlowCache` pickle-blob sidecar (one
``stage-<name>`` kind per stage) and counts ``stage_cache.hits`` /
``stage_cache.misses`` (plus per-stage ``stage_cache.hit.<stage>`` /
``stage_cache.miss.<stage>``) on the active tracer; see
docs/architecture.md.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable

from . import faults as faults_mod
from . import kernels, locking, telemetry
from .cache import FlowCache, code_fingerprint
from .config import FlowConfig

#: Bumped on stage-key recipe or artifact layout changes; invalidates
#: every stored stage artifact without touching the result cache.
#: 2: the key covers the active ``$REPRO_KERNEL`` mode (the root of the
#: chain is the stage key itself, so every downstream key inherits it).
STAGE_KEY_FORMAT = 2

#: The cross-process coordination events a store can record, in the
#: order ``stage_cache.singleflight.<event>`` counters are documented
#: (docs/observability.md).  Shared with the job server's ``/stats``.
SINGLEFLIGHT_EVENTS = ("wait", "steal", "compute", "timeout")


@dataclass(frozen=True)
class Stage:
    """One flow stage: its dependency declaration and its two bodies.

    ``execute(state)`` runs the real stage against the mutable walk
    state and returns the artifact dict to store (or ``None`` for
    nothing worth storing).  ``restore(state, artifact)`` rebuilds the
    state from a stored artifact — it must re-run the stage's guard
    checks and re-emit its result gauges, and must leave the state
    exactly as ``execute`` would for the same inputs.
    """

    name: str
    #: FlowConfig fields this stage itself reads.  Fields read by
    #: upstream stages are inherited transitively through key chaining
    #: and must not be repeated here.
    config_fields: frozenset[str]
    #: Names of the stages whose artifacts this stage consumes.
    upstream: tuple[str, ...]
    execute: Callable = field(compare=False)
    restore: Callable = field(compare=False)
    #: Whether the stage consumes the input netlist directly (only the
    #: ``netlist`` stage; everything downstream inherits the
    #: fingerprint through its upstream keys).
    uses_netlist: bool = False


class StageGraph:
    """A validated, topologically ordered tuple of stages."""

    def __init__(self, stages: tuple[Stage, ...]) -> None:
        self.stages = tuple(stages)
        self._by_name = {s.name: s for s in self.stages}
        if len(self._by_name) != len(self.stages):
            raise ValueError("duplicate stage names in graph")
        config_names = {f.name for f in dataclasses.fields(FlowConfig)}
        seen: set[str] = set()
        for stage in self.stages:
            unknown = stage.config_fields - config_names
            if unknown:
                raise ValueError(
                    f"stage {stage.name!r} declares unknown config "
                    f"fields {sorted(unknown)}")
            for up in stage.upstream:
                if up not in seen:
                    raise ValueError(
                        f"stage {stage.name!r} depends on {up!r} which is "
                        "not an earlier stage")
            seen.add(stage.name)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    def __iter__(self):
        return iter(self.stages)

    def __getitem__(self, name: str) -> Stage:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def upstream_closure(self, name: str) -> tuple[str, ...]:
        """Every stage reachable upstream of ``name``, in graph order."""
        wanted: set[str] = set()
        frontier = list(self[name].upstream)
        while frontier:
            up = frontier.pop()
            if up not in wanted:
                wanted.add(up)
                frontier.extend(self[up].upstream)
        return tuple(n for n in self.names if n in wanted)

    def transitive_fields(self, name: str) -> frozenset[str]:
        """Every config field that can reach ``name``'s stage key."""
        fields = set(self[name].config_fields)
        for up in self.upstream_closure(name):
            fields |= self[up].config_fields
        return frozenset(fields)


def stage_key(stage: Stage, config: FlowConfig,
              upstream_keys: list[str] | tuple[str, ...],
              netlist_fp: str | None = None,
              version: str | None = None) -> str:
    """Content hash of everything that can influence a stage's artifact.

    ``upstream_keys`` must be the keys of ``stage.upstream`` in
    declaration order; chaining them makes upstream config slices and
    the netlist fingerprint transitive.  ``version`` defaults to the
    :func:`~repro.core.cache.code_fingerprint`, so any source edit
    invalidates every stored stage artifact.
    """
    if len(upstream_keys) != len(stage.upstream):
        raise ValueError(
            f"stage {stage.name!r} expects {len(stage.upstream)} upstream "
            f"keys, got {len(upstream_keys)}")
    payload = {
        "format": STAGE_KEY_FORMAT,
        "stage": stage.name,
        "config": {name: getattr(config, name)
                   for name in sorted(stage.config_fields)},
        "upstream": list(upstream_keys),
        "netlist": netlist_fp if stage.uses_netlist else None,
        "kernel": kernels.kernel_mode(),
        "version": version if version is not None else code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class StageLease:
    """The right to compute one stage artifact, won under single-flight.

    Returned by :meth:`StageStore.fetch_or_lease` when this process is
    the designated computer for a (stage, key).  The holder publishes
    via the ordinary :meth:`StageStore.put` and then **must** call
    :meth:`release` (in a ``finally``) so waiters stop polling —
    publish-before-release is what lets a waiter treat "lock gone" as
    "artifact available or holder failed"."""

    def __init__(self, store: "StageStore", name: str, key: str,
                 lock: locking.FileLock) -> None:
        self.store = store
        self.name = name
        self.key = key
        self._lock = lock

    def release(self) -> None:
        self._lock.release()


class StageStore:
    """Per-stage artifact store on a :class:`FlowCache`'s blob sidecar.

    One entry per (stage, stage key): a pickled artifact dict wrapped
    with the stage name so a key collision across kinds can never be
    silently mis-read.  Hits and misses are counted on the store (for
    :class:`~repro.core.runner.SweepStats`) and on the active tracer
    (``stage_cache.*`` counters, documented in docs/observability.md).

    Safe to share between processes: the store itself is stateless
    beyond counters, the underlying blob writes are atomic, and
    :meth:`fetch_or_lease` adds cross-process **single-flight** on top
    — when several processes miss the same stage key at once, exactly
    one computes while the rest wait (bounded by
    ``$REPRO_LOCK_TIMEOUT``) and then load the published artifact.
    The uncontended path emits no singleflight counters, so serial
    runs trace identically to before; contention shows up as
    ``stage_cache.singleflight.{wait,steal,compute,timeout}``.
    """

    def __init__(self, cache: FlowCache, locked: bool = True) -> None:
        self.cache = cache
        #: Whether :meth:`fetch_or_lease` coordinates via file locks;
        #: ``False`` degrades every call to plain get-or-compute.
        self.locked = locked
        self.hits = 0
        self.misses = 0
        #: Per-stage hit/miss counts, e.g. ``{"placement": [3, 1]}``.
        self.by_stage: dict[str, list[int]] = {}
        #: Cross-process coordination events (see docs/robustness.md).
        self.singleflight = {event: 0 for event in SINGLEFLIGHT_EVENTS}

    @property
    def version(self) -> str | None:
        return self.cache.version

    def _tally(self, name: str, hit: bool) -> None:
        tracer = telemetry.current_tracer()
        slot = self.by_stage.setdefault(name, [0, 0])
        if hit:
            self.hits += 1
            slot[0] += 1
            tracer.count("stage_cache.hits")
            tracer.count(f"stage_cache.hit.{name}")
        else:
            self.misses += 1
            slot[1] += 1
            tracer.count("stage_cache.misses")
            tracer.count(f"stage_cache.miss.{name}")

    def _peek(self, name: str, key: str) -> dict | None:
        """A tally-free :meth:`get` for double-checks under the lock."""
        obj = self.cache.get_blob(key, f"stage-{name}")
        if not (isinstance(obj, dict) and obj.get("stage") == name
                and isinstance(obj.get("artifact"), dict)):
            return None
        return obj["artifact"]

    def get(self, name: str, key: str) -> dict | None:
        """The stored artifact for (stage, key), or ``None`` on a miss."""
        artifact = self._peek(name, key)
        self._tally(name, hit=artifact is not None)
        return artifact

    def put(self, name: str, key: str, artifact: dict) -> bool:
        """Store one stage artifact; ``False`` if it cannot be pickled."""
        return self.cache.put_blob(key, f"stage-{name}",
                                   {"stage": name, "artifact": artifact})

    # -- cross-process single-flight -----------------------------------------
    def _lease_won(self, name: str, key: str,
                   lock: locking.FileLock) -> tuple[dict | None,
                                                    "StageLease | None"]:
        """Post-acquisition bookkeeping shared by every win path.

        Double-checks for a publisher that beat us to the store, then
        fires any ``lock.acquire`` fault clause (lock-holder death:
        the process exits hard while holding the lease, which is
        exactly the orphan the stale-lock steal recovers from).
        """
        artifact = self._peek(name, key)
        if artifact is not None:
            lock.release()
            self._tally(name, hit=True)
            return artifact, None
        clause = faults_mod.cache_clause("lock.acquire", key)
        if clause is not None:
            faults_mod.fire(clause, "lock.acquire")
        self._tally(name, hit=False)
        return None, StageLease(self, name, key, lock)

    def _count_flight(self, event: str) -> None:
        self.singleflight[event] += 1
        telemetry.current_tracer().count(
            f"stage_cache.singleflight.{event}")

    def fetch_or_lease(self, name: str,
                       key: str) -> tuple[dict | None, "StageLease | None"]:
        """Load the artifact, or win the right to compute it.

        Returns ``(artifact, None)`` on a store hit, ``(None, lease)``
        when this process should compute-and-publish (then release the
        lease in a ``finally``), and ``(None, None)`` when the store is
        unlocked or a wait timed out — compute independently, exactly
        as an unlocked store would.

        The contended path polls the holder's lock: stale locks (dead
        holder) are stolen, a released lock means the artifact is
        published (load it) or the holder failed (take over), and the
        wait is bounded by ``$REPRO_LOCK_TIMEOUT``.
        """
        artifact = self._peek(name, key)
        if artifact is not None:
            self._tally(name, hit=True)
            return artifact, None
        if not self.locked:
            self._tally(name, hit=False)
            return None, None
        lock = self.cache.locks.lock(key)
        if lock.try_acquire():
            return self._lease_won(name, key, lock)
        # Another process is computing this exact stage key right now.
        self._count_flight("wait")
        deadline = time.monotonic() + locking.lock_timeout()
        while True:
            if lock.is_stale():
                if lock.steal():
                    self._count_flight("steal")
                    self._count_flight("compute")
                    return self._lease_won(name, key, lock)
            elif not lock.exists():
                artifact = self._peek(name, key)
                if artifact is not None:
                    self._tally(name, hit=True)
                    return artifact, None
                # Released without publishing (holder failed): take over.
                if lock.try_acquire():
                    self._count_flight("compute")
                    return self._lease_won(name, key, lock)
                if not lock.exists():
                    # Lock creation itself fails (unwritable store):
                    # degrade to uncoordinated computation.
                    self._tally(name, hit=False)
                    return None, None
            if time.monotonic() >= deadline:
                self._count_flight("timeout")
                self._tally(name, hit=False)
                return None, None
            time.sleep(locking.POLL_INTERVAL_S)

    def counters(self) -> dict[str, float]:
        """This store's activity as ``stage_cache.*`` counter values."""
        out: dict[str, float] = {}
        if self.hits:
            out["stage_cache.hits"] = float(self.hits)
        if self.misses:
            out["stage_cache.misses"] = float(self.misses)
        for name, (hits, misses) in self.by_stage.items():
            if hits:
                out[f"stage_cache.hit.{name}"] = float(hits)
            if misses:
                out[f"stage_cache.miss.{name}"] = float(misses)
        for event, count in self.singleflight.items():
            if count:
                out[f"stage_cache.singleflight.{event}"] = float(count)
        return out
