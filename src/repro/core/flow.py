"""The full implementation + PPA evaluation flow (the paper's Fig. 7).

Stages: library preparation (input-pin redistribution) -> synthesis
sizing -> floorplan -> powerplan (BSPDN + Power Tap Cells) -> placement
-> CTS -> dual-sided routing (Algorithm 1) -> two DEFs -> DEF merge ->
dual-sided RC extraction -> STA + power -> :class:`PPAResult`.

The pipeline is expressed as a declarative stage graph
(:data:`FLOW_GRAPH`, built on :mod:`repro.core.stages`): every stage
declares the config fields it reads and the stages it consumes, and
:func:`run_flow` is a walk over that graph.  With a
:class:`~repro.core.stages.StageStore` attached, stages whose
content-addressed key is already stored are *replayed* from their
artifact instead of re-executed — so a layer-split sweep places once
and routes N times, because ``front_layers``/``back_layers`` first
enter the key chain at the ``routing`` stage.  Replayed stages keep
every contract of executed ones: the same top-level span (with a
zero-cost ``cache_hit`` marker inside), guard checks re-validated on
the loaded artifact, and result gauges re-emitted.  See
docs/architecture.md for the graph, slices and invalidation rules.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from ..cells import Library, build_library, pin_density_label, redistribute_input_pins
from ..extract import congestion_derates, extract_design
from ..lefdef import DefDesign, def_from_routing, merge_defs
from ..macros import attach_macros
from ..netlist import Netlist
from ..pnr import (
    FloorplanSpec,
    GlobalRouter,
    PlacementError,
    achieved_utilization,
    assign_layers,
    bind_power_layers,
    build_grid,
    decompose_nets,
    legalize,
    pin_count_map,
    place,
    plan_floor,
    plan_power_layout,
    refine_placement,
    synthesize_clock_tree,
)
from ..pnr.cts import emit_cts_gauges
from ..power import analyze_power
from ..sta import analyze_timing
from ..synth import size_for_target
from ..tech import Side
from . import faults as faults_mod
from . import stages as stages_mod
from . import telemetry
from .cache import netlist_fingerprint
from .config import FlowConfig
from .errors import FatalError, wrap_stage_error
from .guard import NULL_GUARD, FlowGuard
from .ppa import PPAResult
from .stages import Stage, StageGraph, StageStore

#: The flow's top-level stages (the paper's Fig. 7 pipeline), in
#: execution order.  Every run emits exactly these depth-0 spans, so
#: traces, reports and tests share one canonical stage list.
FLOW_STAGES = (
    "library",        # library build + input-pin redistribution
    "netlist",        # netlist generation + library binding
    "sizing",         # synthesis-style timing optimization
    "floorplan",
    "powerplan",      # BSPDN + Power Tap Cells
    "placement",
    "cts",
    "legalization",   # post-CTS legalization (+ optional refinement)
    "routing",        # grids, Algorithm 1 decomposition, per-side routing
    "def_merge",      # per-side DEF export + dual-sided merge
    "extraction",     # dual-sided RC extraction
    "sta",
    "power",
)


@dataclass
class FlowArtifacts:
    """Everything a run produced, for inspection and DEF export.

    A partial walk (``run_flow(..., stop_after=...)``) leaves the
    fields of un-walked stages ``None`` and ``result`` unset unless the
    walk reached the final stage.
    """

    library: Library | None = None
    netlist: Netlist | None = None
    die: object = None
    powerplan: object = None
    placement: object = None
    cts_report: object = None
    routing_results: dict | None = None
    defs: dict[Side, DefDesign] | None = None
    merged_def: DefDesign | None = None
    extraction: object = None
    result: PPAResult | None = None
    #: Telemetry of this run (empty when tracing was off).
    trace: telemetry.Trace = field(default_factory=telemetry.Trace)
    #: Per-stage outcome of the walk: ``"ran"`` (executed) or
    #: ``"cached"`` (replayed from the stage store), in stage order.
    stage_status: dict[str, str] = field(default_factory=dict)


def prepare_library(config: FlowConfig) -> Library:
    """Build + pin-redistribute the library for one configuration.

    Characterization does not depend on the routing-layer split, so the
    ``library`` stage's store entry (its masters) is shared across
    layer sweeps; there is no longer any in-process master cache.
    """
    tech = config.make_tech()
    library = build_library(tech)
    if config.arch == "ffet" and config.backside_pin_fraction > 0:
        library = redistribute_input_pins(
            library, config.backside_pin_fraction, seed=config.seed
        )
    return library


#: Stages whose output the fault-injection ``corrupt`` mode can damage
#: (each paired with the flow-guard check that must catch it).
CORRUPTIBLE_STAGES = frozenset({"placement", "routing", "def_merge", "power"})


def _corrupt_decomposition(decomposition) -> None:
    """Silently drop one sink from the first non-empty side-net."""
    for key, sinks in decomposition.side_sinks.items():
        if sinks:
            sinks.pop()
            return


def _corrupt_merged_def(merged) -> None:
    """Silently duplicate one route segment in the merged DEF."""
    for segments in merged.nets.values():
        if segments:
            segments.append(segments[0])
            return


@contextmanager
def _stage(tr, name: str, config: FlowConfig, plan: "faults_mod.FaultPlan"):
    """One top-level flow stage: a span, error context, fault point.

    Any exception escaping the stage body is annotated (or wrapped)
    with the stage name and config label so quarantine records and CLI
    messages can say exactly where the flow failed.  Active non-corrupt
    fault clauses fire at the end of the stage body, inside its span.
    """
    with tr.span(name):
        try:
            yield
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            wrapped = wrap_stage_error(exc, name, config.label)
            if wrapped is exc:
                raise
            raise wrapped from exc
        clause = plan.clause_for(name, config) if plan.active else None
        if clause is not None:
            if clause.mode != "corrupt":
                faults_mod.fire(clause, name)
            elif name not in CORRUPTIBLE_STAGES:
                raise FatalError(
                    f"fault injection cannot corrupt stage {name!r} "
                    f"(supported: {sorted(CORRUPTIBLE_STAGES)})",
                    name, config.label, cause="FatalError")


def _corrupting(plan: "faults_mod.FaultPlan", stage: str,
                config: FlowConfig) -> bool:
    """Whether an active ``corrupt`` clause targets this stage."""
    if not plan.active:
        return False
    clause = plan.clause_for(stage, config)
    return clause is not None and clause.mode == "corrupt"


class _FlowState:
    """Mutable state threaded through one graph walk."""

    def __init__(self, config: FlowConfig, tr, guard, plan,
                 netlist_factory, preset_library: Library | None) -> None:
        self.config = config
        self.tr = tr
        self.guard = guard
        self.plan = plan
        self.netlist_factory = netlist_factory
        self.preset_library = preset_library
        #: Netlist instance already built for fingerprinting (reused by
        #: the netlist stage so the factory runs once per walk).
        self.base_netlist: Netlist | None = None
        self.library: Library | None = None
        self.tech = None
        self.netlist: Netlist | None = None
        self.die = None
        self.powerplan = None
        self.util: float | None = None
        self.placement = None
        self.cts_report = None
        self.routing_results: dict | None = None
        self.decomposition = None
        self.defs: dict | None = None
        self.merged = None
        self.extraction = None
        self.timing = None
        self.achieved_ghz: float | None = None
        self.power = None


# -- stage bodies -----------------------------------------------------------
# Each stage has an ``execute`` (the real work; returns the picklable
# artifact to store) and a ``restore`` (rebuild the walk state from a
# stored artifact, re-running guard checks and re-emitting gauges).

def _exec_library(s: _FlowState) -> dict | None:
    if s.preset_library is not None:
        s.library = s.preset_library
        s.tech = s.library.tech
        return None
    library = prepare_library(s.config)
    s.library = library
    s.tech = library.tech
    return {"masters": library.masters}


def _restore_library(s: _FlowState, art: dict) -> None:
    tech = s.config.make_tech()
    s.library = Library(tech=tech, masters=dict(art["masters"]))
    s.tech = tech


def _exec_netlist(s: _FlowState) -> dict:
    netlist = (s.base_netlist if s.base_netlist is not None
               else s.netlist_factory())
    # Hard macros the design declares are compiled into the library
    # before binding (pin directions come from the macro masters).
    attach_macros(netlist, s.library)
    netlist.bind(s.library)
    s.netlist = netlist
    s.tr.gauge("netlist.instances", len(netlist.instances))
    s.tr.gauge("netlist.nets", len(netlist.nets))
    return {"netlist": netlist}


def _restore_netlist(s: _FlowState, art: dict) -> None:
    s.netlist = art["netlist"]
    # The library artifact is captured at the library stage — before
    # any macros exist — so a replayed netlist re-attaches its macros.
    attach_macros(s.netlist, s.library)
    s.tr.gauge("netlist.instances", len(s.netlist.instances))
    s.tr.gauge("netlist.nets", len(s.netlist.nets))


def _exec_sizing(s: _FlowState) -> dict:
    # Synthesis-style timing optimization against the target period.
    size_for_target(
        s.netlist, s.library, s.config.target_period_ps,
        clock=s.config.clock,
        max_iterations=s.config.sizing_iterations,
        max_fanout=s.config.max_fanout,
    )
    return {"netlist": s.netlist}


def _restore_sizing(s: _FlowState, art: dict) -> None:
    s.netlist = art["netlist"]


def _exec_floorplan(s: _FlowState) -> dict:
    s.die = plan_floor(s.netlist, s.library,
                       FloorplanSpec(s.config.utilization,
                                     s.config.aspect_ratio,
                                     s.config.macro_halo_cpp))
    if s.die.macros:
        s.tr.gauge("floorplan.macros", len(s.die.macros))
    return {"die": s.die}


def _restore_floorplan(s: _FlowState, art: dict) -> None:
    s.die = art["die"]
    if getattr(s.die, "macros", ()):
        s.tr.gauge("floorplan.macros", len(s.die.macros))


def _exec_powerplan(s: _FlowState) -> dict:
    # The stripe/tap layout is layer-split-invariant and is what gets
    # stored; the layer binding is recomputed on every walk so the
    # artifact can be shared across routing-layer configurations.
    layout = plan_power_layout(s.tech, s.die,
                               s.config.power_stripe_pitch_cpp)
    s.powerplan = bind_power_layers(layout, s.tech)
    util = achieved_utilization(s.netlist, s.library, s.die)
    if util > s.powerplan.max_legal_utilization:
        raise PlacementError(
            f"utilization {util:.2f} exceeds the Power-Tap-Cell limit "
            f"{s.powerplan.max_legal_utilization:.2f}"
        )
    s.util = util
    return {"layout": layout, "util": util}


def _restore_powerplan(s: _FlowState, art: dict) -> None:
    s.powerplan = bind_power_layers(art["layout"], s.tech)
    s.util = art["util"]


def _exec_placement(s: _FlowState) -> dict:
    s.placement = place(s.netlist, s.library, s.die, s.powerplan,
                        seed=s.config.seed)
    if _corrupting(s.plan, "placement", s.config) and s.placement.locations:
        del s.placement.locations[next(iter(s.placement.locations))]
    s.guard.check_placement(s.netlist, s.die, s.placement)
    return {"placement": s.placement}


def _restore_placement(s: _FlowState, art: dict) -> None:
    s.placement = art["placement"]
    s.guard.check_placement(s.netlist, s.die, s.placement)


def _exec_cts(s: _FlowState) -> dict:
    s.cts_report = synthesize_clock_tree(
        s.netlist, s.library, s.placement, clock_net=s.config.clock,
        mode=s.config.cts_mode, back_fraction=s.config.cts_back_fraction)
    # CTS rewires the clock net and moves buffers: snapshot both the
    # netlist and the placement it mutated, in one blob so shared
    # references stay consistent on restore.
    return {"netlist": s.netlist, "placement": s.placement,
            "cts_report": s.cts_report}


def _restore_cts(s: _FlowState, art: dict) -> None:
    s.netlist = art["netlist"]
    s.placement = art["placement"]
    s.cts_report = art["cts_report"]
    emit_cts_gauges(s.tr, s.cts_report)


def _exec_legalization(s: _FlowState) -> dict:
    s.placement = legalize(s.placement, s.netlist, s.library, s.powerplan)
    if s.config.refine_placement:
        with s.tr.span("refine"):
            refine_placement(s.netlist, s.library, s.placement, s.powerplan,
                             iterations=s.config.refine_iterations,
                             seed=s.config.seed)
    s.guard.check_placement(s.netlist, s.die, s.placement, legal=True)
    return {"placement": s.placement}


def _restore_legalization(s: _FlowState, art: dict) -> None:
    s.placement = art["placement"]
    s.guard.check_placement(s.netlist, s.die, s.placement, legal=True)


def _exec_routing(s: _FlowState) -> dict:
    config, tr, netlist, library = s.config, s.tr, s.netlist, s.library
    placement, die, powerplan, tech = s.placement, s.die, s.powerplan, s.tech
    # Per-side pin density maps and routing grids.
    sides = [Side.FRONT] + ([Side.BACK]
                            if tech.uses_backside_signals else [])
    grids = {}
    with tr.span("grids"):
        for side in sides:
            pin_xy = []
            for inst_name, inst in netlist.instances.items():
                master = library[inst.master]
                p = placement.locations[inst_name]
                offsets = getattr(master, "pin_offsets", None)
                for pin in master.pins.values():
                    if pin.on_side(side):
                        if offsets:
                            dx, dy = offsets.get(pin.name, (0.0, 0.0))
                            pin_xy.append((p.x_nm + dx, p.y_nm + dy))
                        else:
                            pin_xy.append((p.x_nm, p.y_nm))
            counts = pin_count_map(pin_xy, die, config.gcell_tracks,
                                   tech.rules.track_pitch_nm)
            grids[side] = build_grid(tech, die, side, powerplan,
                                     pin_counts=counts,
                                     gcell_tracks=config.gcell_tracks)

    # Algorithm 1: decompose and route each side independently.  Dual-
    # sided CTS hands routing a side assignment for clock tree nets:
    # nets marked "back" are forced onto the backside grid wholesale.
    side_overrides = {
        net: Side.BACK
        for net, assigned in getattr(s.cts_report, "net_sides", {}).items()
        if assigned == "back"
    }
    with tr.span("decompose"):
        decomposition = decompose_nets(
            netlist, library, placement, grids,
            allow_bridging=config.allow_bridging,
            side_overrides=side_overrides)
        if _corrupting(s.plan, "routing", config):
            _corrupt_decomposition(decomposition)
        s.guard.check_decomposition(netlist, decomposition)
    routing_results = {}
    for side in sides:
        with tr.span(f"route.{side.value}"):
            router = GlobalRouter(grids[side],
                                  rrr_iterations=config.rrr_iterations)
            routing_results[side] = router.route_all(
                decomposition.specs[side])
    s.routing_results = routing_results
    s.decomposition = decomposition
    # Bridging (Algorithm 1 fallback) inserts buffers into the netlist
    # and the placement, so both post-routing snapshots ride along.
    return {"routing_results": routing_results,
            "decomposition": decomposition,
            "netlist": netlist, "placement": placement}


def _restore_routing(s: _FlowState, art: dict) -> None:
    s.routing_results = art["routing_results"]
    s.decomposition = art["decomposition"]
    s.netlist = art["netlist"]
    s.placement = art["placement"]
    s.guard.check_decomposition(s.netlist, s.decomposition)


def _exec_def_merge(s: _FlowState) -> dict:
    config, tr, netlist = s.config, s.tr, s.netlist
    sides = list(s.routing_results)
    # Two DEFs, merged for dual-sided extraction (Section III.C).
    defs = {}
    for side in sides:
        with tr.span(f"def_export.{side.value}"):
            assignment = assign_layers(s.routing_results[side])
            defs[side] = def_from_routing(
                netlist, s.placement, s.die, s.routing_results[side],
                assignment, powerplan=s.powerplan,
                design_name=f"{netlist.name}_{side.value}",
            )
    if Side.BACK in defs:
        merged = merge_defs(defs[Side.FRONT], defs[Side.BACK],
                            name=netlist.name)
    else:
        merged = defs[Side.FRONT]
    if _corrupting(s.plan, "def_merge", config):
        _corrupt_merged_def(merged)
    s.guard.check_merged_def(netlist, merged)
    s.defs = defs
    s.merged = merged
    return {"defs": defs, "merged": merged}


def _restore_def_merge(s: _FlowState, art: dict) -> None:
    s.defs = art["defs"]
    s.merged = art["merged"]
    s.guard.check_merged_def(s.netlist, s.merged)


def _exec_extraction(s: _FlowState) -> dict:
    derates = congestion_derates(s.routing_results)
    s.extraction = extract_design(s.merged, s.netlist, s.library,
                                  s.placement, rc_derates=derates)
    return {"extraction": s.extraction}


def _restore_extraction(s: _FlowState, art: dict) -> None:
    s.extraction = art["extraction"]


def _exec_sta(s: _FlowState) -> dict:
    timing = analyze_timing(s.netlist, s.library, s.extraction,
                            s.config.target_period_ps, clock=s.config.clock)
    s.timing = timing
    s.achieved_ghz = timing.achieved_frequency_ghz
    s.tr.gauge("sta.achieved_frequency_ghz", s.achieved_ghz)
    s.tr.gauge("sta.wns_ps", timing.wns_ps)
    return {"timing": timing}


def _restore_sta(s: _FlowState, art: dict) -> None:
    s.timing = art["timing"]
    s.achieved_ghz = s.timing.achieved_frequency_ghz
    s.tr.gauge("sta.achieved_frequency_ghz", s.achieved_ghz)
    s.tr.gauge("sta.wns_ps", s.timing.wns_ps)


def _exec_power(s: _FlowState) -> dict:
    power = analyze_power(s.netlist, s.library, s.extraction, s.achieved_ghz,
                          activity=s.config.activity, clock=s.config.clock)
    s.tr.gauge("power.total_mw", power.total_mw)
    if _corrupting(s.plan, "power", s.config):
        power = dataclasses.replace(
            power, switching_mw=-abs(power.switching_mw) - 1.0)
    s.power = power
    return {"power": power}


def _restore_power(s: _FlowState, art: dict) -> None:
    s.power = art["power"]
    s.tr.gauge("power.total_mw", s.power.total_mw)


#: The flow as a declarative stage graph.  ``config_fields`` lists only
#: the fields the stage itself reads — upstream fields are inherited
#: through key chaining (see :func:`repro.core.stages.stage_key`).
#: Note which stages do *not* read the layer split: everything up to
#: and including ``legalization``, which is exactly the prefix a
#: Table III layer-split enumeration shares.
FLOW_GRAPH = StageGraph((
    Stage("library",
          config_fields=frozenset({"arch", "backside_pin_fraction", "seed"}),
          upstream=(),
          execute=_exec_library, restore=_restore_library),
    Stage("netlist",
          config_fields=frozenset(),
          upstream=("library",), uses_netlist=True,
          execute=_exec_netlist, restore=_restore_netlist),
    Stage("sizing",
          config_fields=frozenset({"target_frequency_ghz", "clock",
                                   "sizing_iterations", "max_fanout"}),
          upstream=("netlist",),
          execute=_exec_sizing, restore=_restore_sizing),
    Stage("floorplan",
          config_fields=frozenset({"utilization", "aspect_ratio",
                                   "macro_halo_cpp"}),
          upstream=("sizing",),
          execute=_exec_floorplan, restore=_restore_floorplan),
    Stage("powerplan",
          config_fields=frozenset({"power_stripe_pitch_cpp"}),
          upstream=("floorplan",),
          execute=_exec_powerplan, restore=_restore_powerplan),
    Stage("placement",
          config_fields=frozenset({"seed"}),
          upstream=("powerplan",),
          execute=_exec_placement, restore=_restore_placement),
    Stage("cts",
          config_fields=frozenset({"clock", "cts_mode",
                                   "cts_back_fraction"}),
          upstream=("placement",),
          execute=_exec_cts, restore=_restore_cts),
    Stage("legalization",
          config_fields=frozenset({"refine_placement", "refine_iterations",
                                   "seed"}),
          upstream=("cts",),
          execute=_exec_legalization, restore=_restore_legalization),
    Stage("routing",
          config_fields=frozenset({"front_layers", "back_layers",
                                   "gcell_tracks", "allow_bridging",
                                   "rrr_iterations"}),
          upstream=("legalization",),
          execute=_exec_routing, restore=_restore_routing),
    Stage("def_merge",
          config_fields=frozenset(),
          upstream=("routing",),
          execute=_exec_def_merge, restore=_restore_def_merge),
    Stage("extraction",
          config_fields=frozenset(),
          upstream=("def_merge",),
          execute=_exec_extraction, restore=_restore_extraction),
    Stage("sta",
          config_fields=frozenset({"target_frequency_ghz", "clock"}),
          upstream=("extraction",),
          execute=_exec_sta, restore=_restore_sta),
    Stage("power",
          config_fields=frozenset({"activity", "clock"}),
          upstream=("sta",),
          execute=_exec_power, restore=_restore_power),
))

assert FLOW_GRAPH.names == FLOW_STAGES


def stage_keys(config: FlowConfig, netlist_fp: str,
               version: str | None = None) -> dict[str, str]:
    """Every stage's content-addressed key for one (config, netlist)."""
    keys: dict[str, str] = {}
    for stage in FLOW_GRAPH:
        keys[stage.name] = stages_mod.stage_key(
            stage, config, [keys[u] for u in stage.upstream],
            netlist_fp=netlist_fp, version=version)
    return keys


def run_flow(netlist_factory: Callable[[], Netlist], config: FlowConfig,
             library: Library | None = None,
             return_artifacts: bool = False,
             tracer: "telemetry.Tracer | None" = None,
             guard: FlowGuard | None = None,
             faults: "faults_mod.FaultPlan | None" = None,
             store: StageStore | None = None,
             stop_after: str | None = None):
    """Run the complete flow; returns a :class:`PPAResult`.

    ``netlist_factory`` must return a *fresh* netlist each call (the
    flow mutates it: buffering, sizing, CTS).  Pass ``library`` to
    reuse a characterized library across runs of the same config
    family.  Raises :class:`~repro.pnr.PlacementError` when the target
    utilization cannot be placed (e.g. beyond the tap-cell limit).

    Pass a :class:`~repro.core.telemetry.Tracer` to record per-stage
    spans (:data:`FLOW_STAGES`) and subsystem counters; telemetry never
    changes the result.  The tracer is activated for the duration of
    the call so instrumented subsystems report into it.

    ``guard`` selects the post-stage invariant checker (default: a
    :class:`~repro.core.guard.FlowGuard` in the ``$REPRO_GUARD`` mode,
    strict unless overridden).  ``faults`` injects deterministic
    failures for testing the recovery paths (default: the
    ``$REPRO_FAULTS`` plan, normally inert); see
    :mod:`repro.core.faults`.  Neither changes a healthy run's result.

    ``store`` attaches a :class:`~repro.core.stages.StageStore`: stages
    whose key is already stored are replayed from their artifact, and
    freshly executed stages are stored for later walks.  The store
    never changes what a run returns — only how much of it is
    recomputed.  It is bypassed when fault injection is active (as the
    result cache is) and when a pre-built ``library`` is supplied (the
    stage keys could not vouch for foreign masters).

    ``stop_after`` names a stage after which the walk stops; the
    partial :class:`FlowArtifacts` (with :attr:`~FlowArtifacts.stage_status`)
    is returned, with ``result`` populated only when the walk reaches
    the final stage.
    """
    if guard is None:
        guard = FlowGuard()
    if faults is None:
        faults = faults_mod.plan_from_env()
    if faults.flow_active or library is not None:
        # Injected flow faults must never write to (or be hidden by)
        # the store; a caller-supplied library bypasses it entirely.
        # Cache-point fault clauses (``cache.*``/``lock.*``) keep the
        # store attached — they exist to exercise it.
        store = None
    if stop_after is not None and stop_after not in FLOW_GRAPH:
        raise ValueError(
            f"unknown stage {stop_after!r} (stages: {', '.join(FLOW_STAGES)})")
    with telemetry.activate(tracer) as tr:
        return _run_flow_traced(netlist_factory, config, library,
                                return_artifacts, tr, guard, faults,
                                store=store, stop_after=stop_after)


def _netlist_for_fingerprint(netlist_factory, config) -> Netlist:
    """Build the fingerprint netlist, attributing failures to ``netlist``."""
    try:
        return netlist_factory()
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        wrapped = wrap_stage_error(exc, "netlist", config.label)
        if wrapped is exc:
            raise
        raise wrapped from exc


def _run_flow_traced(netlist_factory, config, library, return_artifacts, tr,
                     guard=NULL_GUARD, plan=faults_mod.FaultPlan(),
                     store=None, stop_after=None):
    state = _FlowState(config, tr, guard, plan, netlist_factory, library)
    keys: dict[str, str] = {}
    if store is not None:
        state.base_netlist = _netlist_for_fingerprint(netlist_factory, config)
        keys = stage_keys(config, netlist_fingerprint(state.base_netlist),
                          version=store.version)

    status: dict[str, str] = {}
    for stage in FLOW_GRAPH:
        artifact = lease = None
        if store is not None:
            # Single-flight: a hit loads the artifact; a miss either
            # wins a lease (this process computes while concurrent
            # missers of the same key wait) or — after a bounded wait
            # that timed out — degrades to independent computation.
            artifact, lease = store.fetch_or_lease(
                stage.name, keys[stage.name])
        if artifact is not None:
            # Replay: same top-level span as an executed stage (so the
            # canonical stage list holds for every trace), a zero-cost
            # cache_hit marker inside it, guard checks re-validated on
            # the loaded artifact by the stage's restore hook.
            with _stage(tr, stage.name, config, plan):
                tr.zero_span("cache_hit")
                stage.restore(state, artifact)
            status[stage.name] = "cached"
        else:
            try:
                with _stage(tr, stage.name, config, plan):
                    out = stage.execute(state)
                if store is not None and out is not None:
                    store.put(stage.name, keys[stage.name], out)
            finally:
                # Publish-before-release: waiters poll the lock, so by
                # the time it disappears the artifact must be readable
                # (or the stage failed and a waiter takes over).
                if lease is not None:
                    lease.release()
            status[stage.name] = "ran"
        if stage.name == stop_after:
            break

    if stop_after is not None and stop_after != FLOW_STAGES[-1]:
        return FlowArtifacts(
            library=state.library, netlist=state.netlist, die=state.die,
            powerplan=state.powerplan, placement=state.placement,
            cts_report=state.cts_report,
            routing_results=state.routing_results, defs=state.defs,
            merged_def=state.merged, extraction=state.extraction,
            result=None,
            trace=tr.finish() if tr.enabled else telemetry.Trace(),
            stage_status=status,
        )

    routing_results = state.routing_results
    drv = sum(r.drv_count for r in routing_results.values())
    tr.gauge("route.drv_total", drv)
    front_wl = routing_results[Side.FRONT].total_wirelength_nm / 1000.0
    back_wl = (routing_results[Side.BACK].total_wirelength_nm / 1000.0
               if Side.BACK in routing_results else 0.0)

    result = PPAResult(
        label=config.label,
        arch=config.arch,
        routing_label=state.tech.routing_label,
        pin_density_label=(
            pin_density_label(config.backside_pin_fraction)
            if config.arch == "ffet" and config.back_layers else ""
        ),
        target_frequency_ghz=config.target_frequency_ghz,
        target_utilization=config.utilization,
        achieved_utilization=state.util,
        core_area_um2=state.die.area_um2,
        cell_area_um2=state.netlist.total_cell_area_nm2(state.library) / 1e6,
        cell_count=len(state.netlist.instances),
        achieved_frequency_ghz=state.achieved_ghz,
        timing=state.timing,
        power=state.power,
        drv_count=drv,
        total_wirelength_um=front_wl + back_wl,
        front_wirelength_um=front_wl,
        back_wirelength_um=back_wl,
        tap_cell_count=len(state.powerplan.tap_cells),
        cts_buffers=state.cts_report.buffers,
        placement_feasible=True,
    )
    guard.check_result(result)
    if return_artifacts or stop_after is not None:
        return FlowArtifacts(
            library=state.library, netlist=state.netlist, die=state.die,
            powerplan=state.powerplan, placement=state.placement,
            cts_report=state.cts_report,
            routing_results=routing_results, defs=state.defs,
            merged_def=state.merged, extraction=state.extraction,
            result=result,
            trace=tr.finish() if tr.enabled else telemetry.Trace(),
            stage_status=status,
        )
    return result
