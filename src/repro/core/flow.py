"""The full implementation + PPA evaluation flow (the paper's Fig. 7).

Stages: library preparation (input-pin redistribution) -> synthesis
sizing -> floorplan -> powerplan (BSPDN + Power Tap Cells) -> placement
-> CTS -> dual-sided routing (Algorithm 1) -> two DEFs -> DEF merge ->
dual-sided RC extraction -> STA + power -> :class:`PPAResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..cells import Library, build_library, pin_density_label, redistribute_input_pins
from ..extract import congestion_derates, extract_design
from ..lefdef import DefDesign, def_from_routing, merge_defs
from ..netlist import Netlist
from ..pnr import (
    FloorplanSpec,
    GlobalRouter,
    PlacementError,
    achieved_utilization,
    assign_layers,
    build_grid,
    decompose_nets,
    legalize,
    pin_count_map,
    place,
    plan_floor,
    plan_power,
    refine_placement,
    synthesize_clock_tree,
)
from ..power import analyze_power
from ..sta import analyze_timing
from ..synth import size_for_target
from ..tech import Side
from . import telemetry
from .config import FlowConfig
from .ppa import PPAResult

#: The flow's top-level stages (the paper's Fig. 7 pipeline), in
#: execution order.  Every run emits exactly these depth-0 spans, so
#: traces, reports and tests share one canonical stage list.
FLOW_STAGES = (
    "library",        # library build + input-pin redistribution
    "netlist",        # netlist generation + library binding
    "sizing",         # synthesis-style timing optimization
    "floorplan",
    "powerplan",      # BSPDN + Power Tap Cells
    "placement",
    "cts",
    "legalization",   # post-CTS legalization (+ optional refinement)
    "routing",        # grids, Algorithm 1 decomposition, per-side routing
    "def_merge",      # per-side DEF export + dual-sided merge
    "extraction",     # dual-sided RC extraction
    "sta",
    "power",
)


@dataclass
class FlowArtifacts:
    """Everything a run produced, for inspection and DEF export."""

    library: Library
    netlist: Netlist
    die: object
    powerplan: object
    placement: object
    cts_report: object
    routing_results: dict
    defs: dict[Side, DefDesign]
    merged_def: DefDesign
    extraction: object
    result: PPAResult
    #: Telemetry of this run (empty when tracing was off).
    trace: telemetry.Trace = field(default_factory=telemetry.Trace)


#: Characterized masters keyed by (arch, backside fraction, seed).
#: Characterization does not depend on the routing-layer configuration,
#: so sweeps over layer counts can share one library build.
_MASTER_CACHE: dict[tuple, dict] = {}


def prepare_library(config: FlowConfig) -> Library:
    """Build + pin-redistribute the library for one configuration."""
    tech = config.make_tech()
    key = (config.arch, round(config.backside_pin_fraction, 6), config.seed)
    masters = _MASTER_CACHE.get(key)
    if masters is None:
        library = build_library(tech)
        if config.arch == "ffet" and config.backside_pin_fraction > 0:
            library = redistribute_input_pins(
                library, config.backside_pin_fraction, seed=config.seed
            )
        _MASTER_CACHE[key] = library.masters
        masters = library.masters
    return Library(tech=tech, masters=dict(masters))


def run_flow(netlist_factory: Callable[[], Netlist], config: FlowConfig,
             library: Library | None = None,
             return_artifacts: bool = False,
             tracer: "telemetry.Tracer | None" = None):
    """Run the complete flow; returns a :class:`PPAResult`.

    ``netlist_factory`` must return a *fresh* netlist each call (the
    flow mutates it: buffering, sizing, CTS).  Pass ``library`` to
    reuse a characterized library across runs of the same config
    family.  Raises :class:`~repro.pnr.PlacementError` when the target
    utilization cannot be placed (e.g. beyond the tap-cell limit).

    Pass a :class:`~repro.core.telemetry.Tracer` to record per-stage
    spans (:data:`FLOW_STAGES`) and subsystem counters; telemetry never
    changes the result.  The tracer is activated for the duration of
    the call so instrumented subsystems report into it.
    """
    with telemetry.activate(tracer) as tr:
        return _run_flow_traced(netlist_factory, config, library,
                                return_artifacts, tr)


def _run_flow_traced(netlist_factory, config, library, return_artifacts, tr):
    with tr.span("library"):
        if library is None:
            library = prepare_library(config)
        tech = library.tech

    with tr.span("netlist"):
        netlist = netlist_factory()
        netlist.bind(library)
        tr.gauge("netlist.instances", len(netlist.instances))
        tr.gauge("netlist.nets", len(netlist.nets))

    # Synthesis-style timing optimization against the target period.
    with tr.span("sizing"):
        sizing = size_for_target(
            netlist, library, config.target_period_ps, clock=config.clock,
            max_iterations=config.sizing_iterations,
            max_fanout=config.max_fanout,
        )

    # Floorplan and powerplan.
    with tr.span("floorplan"):
        die = plan_floor(netlist, library,
                         FloorplanSpec(config.utilization,
                                       config.aspect_ratio))
    with tr.span("powerplan"):
        powerplan = plan_power(tech, die, config.power_stripe_pitch_cpp)
        util = achieved_utilization(netlist, library, die)
        if util > powerplan.max_legal_utilization:
            raise PlacementError(
                f"utilization {util:.2f} exceeds the Power-Tap-Cell limit "
                f"{powerplan.max_legal_utilization:.2f}"
            )

    # Placement and CTS.
    with tr.span("placement"):
        placement = place(netlist, library, die, powerplan, seed=config.seed)
    with tr.span("cts"):
        cts_report = synthesize_clock_tree(netlist, library, placement,
                                           clock_net=config.clock)
    with tr.span("legalization"):
        placement = legalize(placement, netlist, library, powerplan)
        if config.refine_placement:
            with tr.span("refine"):
                refine_placement(netlist, library, placement, powerplan,
                                 iterations=config.refine_iterations,
                                 seed=config.seed)

    with tr.span("routing"):
        # Per-side pin density maps and routing grids.
        sides = [Side.FRONT] + ([Side.BACK]
                                if tech.uses_backside_signals else [])
        grids = {}
        with tr.span("grids"):
            for side in sides:
                pin_xy = []
                for inst_name, inst in netlist.instances.items():
                    master = library[inst.master]
                    p = placement.locations[inst_name]
                    for pin in master.pins.values():
                        if pin.on_side(side):
                            pin_xy.append((p.x_nm, p.y_nm))
                counts = pin_count_map(pin_xy, die, config.gcell_tracks,
                                       tech.rules.track_pitch_nm)
                grids[side] = build_grid(tech, die, side, powerplan,
                                         pin_counts=counts,
                                         gcell_tracks=config.gcell_tracks)

        # Algorithm 1: decompose and route each side independently.
        with tr.span("decompose"):
            decomposition = decompose_nets(
                netlist, library, placement, grids,
                allow_bridging=config.allow_bridging)
        routing_results = {}
        for side in sides:
            with tr.span(f"route.{side.value}"):
                router = GlobalRouter(grids[side],
                                      rrr_iterations=config.rrr_iterations)
                routing_results[side] = router.route_all(
                    decomposition.specs[side])

    with tr.span("def_merge"):
        # Two DEFs, merged for dual-sided extraction (Section III.C).
        defs = {}
        for side in sides:
            with tr.span(f"def_export.{side.value}"):
                assignment = assign_layers(routing_results[side])
                defs[side] = def_from_routing(
                    netlist, placement, die, routing_results[side],
                    assignment, powerplan=powerplan,
                    design_name=f"{netlist.name}_{side.value}",
                )
        if Side.BACK in defs:
            merged = merge_defs(defs[Side.FRONT], defs[Side.BACK],
                                name=netlist.name)
        else:
            merged = defs[Side.FRONT]

    with tr.span("extraction"):
        derates = congestion_derates(routing_results)
        extraction = extract_design(merged, netlist, library, placement,
                                    rc_derates=derates)

    with tr.span("sta"):
        timing = analyze_timing(netlist, library, extraction,
                                config.target_period_ps, clock=config.clock)
        achieved_ghz = timing.achieved_frequency_ghz
        tr.gauge("sta.achieved_frequency_ghz", achieved_ghz)
        tr.gauge("sta.wns_ps", timing.wns_ps)
    with tr.span("power"):
        power = analyze_power(netlist, library, extraction, achieved_ghz,
                              activity=config.activity, clock=config.clock)
        tr.gauge("power.total_mw", power.total_mw)

    drv = sum(r.drv_count for r in routing_results.values())
    tr.gauge("route.drv_total", drv)
    front_wl = routing_results[Side.FRONT].total_wirelength_nm / 1000.0
    back_wl = (routing_results[Side.BACK].total_wirelength_nm / 1000.0
               if Side.BACK in routing_results else 0.0)

    result = PPAResult(
        label=config.label,
        arch=config.arch,
        routing_label=tech.routing_label,
        pin_density_label=(
            pin_density_label(config.backside_pin_fraction)
            if config.arch == "ffet" and config.back_layers else ""
        ),
        target_frequency_ghz=config.target_frequency_ghz,
        target_utilization=config.utilization,
        achieved_utilization=util,
        core_area_um2=die.area_um2,
        cell_area_um2=netlist.total_cell_area_nm2(library) / 1e6,
        cell_count=len(netlist.instances),
        achieved_frequency_ghz=achieved_ghz,
        timing=timing,
        power=power,
        drv_count=drv,
        total_wirelength_um=front_wl + back_wl,
        front_wirelength_um=front_wl,
        back_wirelength_um=back_wl,
        tap_cell_count=len(powerplan.tap_cells),
        cts_buffers=cts_report.buffers,
        placement_feasible=True,
    )
    if return_artifacts:
        return FlowArtifacts(
            library=library, netlist=netlist, die=die, powerplan=powerplan,
            placement=placement, cts_report=cts_report,
            routing_results=routing_results, defs=defs, merged_def=merged,
            extraction=extraction, result=result,
            trace=tr.finish() if tr.enabled else telemetry.Trace(),
        )
    return result
