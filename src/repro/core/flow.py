"""The full implementation + PPA evaluation flow (the paper's Fig. 7).

Stages: library preparation (input-pin redistribution) -> synthesis
sizing -> floorplan -> powerplan (BSPDN + Power Tap Cells) -> placement
-> CTS -> dual-sided routing (Algorithm 1) -> two DEFs -> DEF merge ->
dual-sided RC extraction -> STA + power -> :class:`PPAResult`.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from ..cells import Library, build_library, pin_density_label, redistribute_input_pins
from ..extract import congestion_derates, extract_design
from ..lefdef import DefDesign, def_from_routing, merge_defs
from ..netlist import Netlist
from ..pnr import (
    FloorplanSpec,
    GlobalRouter,
    PlacementError,
    achieved_utilization,
    assign_layers,
    build_grid,
    decompose_nets,
    legalize,
    pin_count_map,
    place,
    plan_floor,
    plan_power,
    refine_placement,
    synthesize_clock_tree,
)
from ..power import analyze_power
from ..sta import analyze_timing
from ..synth import size_for_target
from ..tech import Side
from . import faults as faults_mod
from . import telemetry
from .config import FlowConfig
from .errors import FatalError, wrap_stage_error
from .guard import NULL_GUARD, FlowGuard
from .ppa import PPAResult

#: The flow's top-level stages (the paper's Fig. 7 pipeline), in
#: execution order.  Every run emits exactly these depth-0 spans, so
#: traces, reports and tests share one canonical stage list.
FLOW_STAGES = (
    "library",        # library build + input-pin redistribution
    "netlist",        # netlist generation + library binding
    "sizing",         # synthesis-style timing optimization
    "floorplan",
    "powerplan",      # BSPDN + Power Tap Cells
    "placement",
    "cts",
    "legalization",   # post-CTS legalization (+ optional refinement)
    "routing",        # grids, Algorithm 1 decomposition, per-side routing
    "def_merge",      # per-side DEF export + dual-sided merge
    "extraction",     # dual-sided RC extraction
    "sta",
    "power",
)


@dataclass
class FlowArtifacts:
    """Everything a run produced, for inspection and DEF export."""

    library: Library
    netlist: Netlist
    die: object
    powerplan: object
    placement: object
    cts_report: object
    routing_results: dict
    defs: dict[Side, DefDesign]
    merged_def: DefDesign
    extraction: object
    result: PPAResult
    #: Telemetry of this run (empty when tracing was off).
    trace: telemetry.Trace = field(default_factory=telemetry.Trace)


#: Characterized masters keyed by (arch, backside fraction, seed).
#: Characterization does not depend on the routing-layer configuration,
#: so sweeps over layer counts can share one library build.
_MASTER_CACHE: dict[tuple, dict] = {}


def prepare_library(config: FlowConfig) -> Library:
    """Build + pin-redistribute the library for one configuration."""
    tech = config.make_tech()
    key = (config.arch, round(config.backside_pin_fraction, 6), config.seed)
    masters = _MASTER_CACHE.get(key)
    if masters is None:
        library = build_library(tech)
        if config.arch == "ffet" and config.backside_pin_fraction > 0:
            library = redistribute_input_pins(
                library, config.backside_pin_fraction, seed=config.seed
            )
        _MASTER_CACHE[key] = library.masters
        masters = library.masters
    return Library(tech=tech, masters=dict(masters))


#: Stages whose output the fault-injection ``corrupt`` mode can damage
#: (each paired with the flow-guard check that must catch it).
CORRUPTIBLE_STAGES = frozenset({"placement", "routing", "def_merge", "power"})


def _corrupt_decomposition(decomposition) -> None:
    """Silently drop one sink from the first non-empty side-net."""
    for key, sinks in decomposition.side_sinks.items():
        if sinks:
            sinks.pop()
            return


def _corrupt_merged_def(merged) -> None:
    """Silently duplicate one route segment in the merged DEF."""
    for segments in merged.nets.values():
        if segments:
            segments.append(segments[0])
            return


@contextmanager
def _stage(tr, name: str, config: FlowConfig, plan: "faults_mod.FaultPlan"):
    """One top-level flow stage: a span, error context, fault point.

    Any exception escaping the stage body is annotated (or wrapped)
    with the stage name and config label so quarantine records and CLI
    messages can say exactly where the flow failed.  Active non-corrupt
    fault clauses fire at the end of the stage body, inside its span.
    """
    with tr.span(name):
        try:
            yield
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            wrapped = wrap_stage_error(exc, name, config.label)
            if wrapped is exc:
                raise
            raise wrapped from exc
        clause = plan.clause_for(name, config) if plan.active else None
        if clause is not None:
            if clause.mode != "corrupt":
                faults_mod.fire(clause, name)
            elif name not in CORRUPTIBLE_STAGES:
                raise FatalError(
                    f"fault injection cannot corrupt stage {name!r} "
                    f"(supported: {sorted(CORRUPTIBLE_STAGES)})",
                    name, config.label, cause="FatalError")


def _corrupting(plan: "faults_mod.FaultPlan", stage: str,
                config: FlowConfig) -> bool:
    """Whether an active ``corrupt`` clause targets this stage."""
    if not plan.active:
        return False
    clause = plan.clause_for(stage, config)
    return clause is not None and clause.mode == "corrupt"


def run_flow(netlist_factory: Callable[[], Netlist], config: FlowConfig,
             library: Library | None = None,
             return_artifacts: bool = False,
             tracer: "telemetry.Tracer | None" = None,
             guard: FlowGuard | None = None,
             faults: "faults_mod.FaultPlan | None" = None):
    """Run the complete flow; returns a :class:`PPAResult`.

    ``netlist_factory`` must return a *fresh* netlist each call (the
    flow mutates it: buffering, sizing, CTS).  Pass ``library`` to
    reuse a characterized library across runs of the same config
    family.  Raises :class:`~repro.pnr.PlacementError` when the target
    utilization cannot be placed (e.g. beyond the tap-cell limit).

    Pass a :class:`~repro.core.telemetry.Tracer` to record per-stage
    spans (:data:`FLOW_STAGES`) and subsystem counters; telemetry never
    changes the result.  The tracer is activated for the duration of
    the call so instrumented subsystems report into it.

    ``guard`` selects the post-stage invariant checker (default: a
    :class:`~repro.core.guard.FlowGuard` in the ``$REPRO_GUARD`` mode,
    strict unless overridden).  ``faults`` injects deterministic
    failures for testing the recovery paths (default: the
    ``$REPRO_FAULTS`` plan, normally inert); see
    :mod:`repro.core.faults`.  Neither changes a healthy run's result.
    """
    if guard is None:
        guard = FlowGuard()
    if faults is None:
        faults = faults_mod.plan_from_env()
    with telemetry.activate(tracer) as tr:
        return _run_flow_traced(netlist_factory, config, library,
                                return_artifacts, tr, guard, faults)


def _run_flow_traced(netlist_factory, config, library, return_artifacts, tr,
                     guard=NULL_GUARD, plan=faults_mod.FaultPlan()):
    with _stage(tr, "library", config, plan):
        if library is None:
            library = prepare_library(config)
        tech = library.tech

    with _stage(tr, "netlist", config, plan):
        netlist = netlist_factory()
        netlist.bind(library)
        tr.gauge("netlist.instances", len(netlist.instances))
        tr.gauge("netlist.nets", len(netlist.nets))

    # Synthesis-style timing optimization against the target period.
    with _stage(tr, "sizing", config, plan):
        sizing = size_for_target(
            netlist, library, config.target_period_ps, clock=config.clock,
            max_iterations=config.sizing_iterations,
            max_fanout=config.max_fanout,
        )

    # Floorplan and powerplan.
    with _stage(tr, "floorplan", config, plan):
        die = plan_floor(netlist, library,
                         FloorplanSpec(config.utilization,
                                       config.aspect_ratio))
    with _stage(tr, "powerplan", config, plan):
        powerplan = plan_power(tech, die, config.power_stripe_pitch_cpp)
        util = achieved_utilization(netlist, library, die)
        if util > powerplan.max_legal_utilization:
            raise PlacementError(
                f"utilization {util:.2f} exceeds the Power-Tap-Cell limit "
                f"{powerplan.max_legal_utilization:.2f}"
            )

    # Placement and CTS.
    with _stage(tr, "placement", config, plan):
        placement = place(netlist, library, die, powerplan, seed=config.seed)
        if _corrupting(plan, "placement", config) and placement.locations:
            del placement.locations[next(iter(placement.locations))]
        guard.check_placement(netlist, die, placement)
    with _stage(tr, "cts", config, plan):
        cts_report = synthesize_clock_tree(netlist, library, placement,
                                           clock_net=config.clock)
    with _stage(tr, "legalization", config, plan):
        placement = legalize(placement, netlist, library, powerplan)
        if config.refine_placement:
            with tr.span("refine"):
                refine_placement(netlist, library, placement, powerplan,
                                 iterations=config.refine_iterations,
                                 seed=config.seed)
        guard.check_placement(netlist, die, placement)

    with _stage(tr, "routing", config, plan):
        # Per-side pin density maps and routing grids.
        sides = [Side.FRONT] + ([Side.BACK]
                                if tech.uses_backside_signals else [])
        grids = {}
        with tr.span("grids"):
            for side in sides:
                pin_xy = []
                for inst_name, inst in netlist.instances.items():
                    master = library[inst.master]
                    p = placement.locations[inst_name]
                    for pin in master.pins.values():
                        if pin.on_side(side):
                            pin_xy.append((p.x_nm, p.y_nm))
                counts = pin_count_map(pin_xy, die, config.gcell_tracks,
                                       tech.rules.track_pitch_nm)
                grids[side] = build_grid(tech, die, side, powerplan,
                                         pin_counts=counts,
                                         gcell_tracks=config.gcell_tracks)

        # Algorithm 1: decompose and route each side independently.
        with tr.span("decompose"):
            decomposition = decompose_nets(
                netlist, library, placement, grids,
                allow_bridging=config.allow_bridging)
            if _corrupting(plan, "routing", config):
                _corrupt_decomposition(decomposition)
            guard.check_decomposition(netlist, decomposition)
        routing_results = {}
        for side in sides:
            with tr.span(f"route.{side.value}"):
                router = GlobalRouter(grids[side],
                                      rrr_iterations=config.rrr_iterations)
                routing_results[side] = router.route_all(
                    decomposition.specs[side])

    with _stage(tr, "def_merge", config, plan):
        # Two DEFs, merged for dual-sided extraction (Section III.C).
        defs = {}
        for side in sides:
            with tr.span(f"def_export.{side.value}"):
                assignment = assign_layers(routing_results[side])
                defs[side] = def_from_routing(
                    netlist, placement, die, routing_results[side],
                    assignment, powerplan=powerplan,
                    design_name=f"{netlist.name}_{side.value}",
                )
        if Side.BACK in defs:
            merged = merge_defs(defs[Side.FRONT], defs[Side.BACK],
                                name=netlist.name)
        else:
            merged = defs[Side.FRONT]
        if _corrupting(plan, "def_merge", config):
            _corrupt_merged_def(merged)
        guard.check_merged_def(netlist, merged)

    with _stage(tr, "extraction", config, plan):
        derates = congestion_derates(routing_results)
        extraction = extract_design(merged, netlist, library, placement,
                                    rc_derates=derates)

    with _stage(tr, "sta", config, plan):
        timing = analyze_timing(netlist, library, extraction,
                                config.target_period_ps, clock=config.clock)
        achieved_ghz = timing.achieved_frequency_ghz
        tr.gauge("sta.achieved_frequency_ghz", achieved_ghz)
        tr.gauge("sta.wns_ps", timing.wns_ps)
    with _stage(tr, "power", config, plan):
        power = analyze_power(netlist, library, extraction, achieved_ghz,
                              activity=config.activity, clock=config.clock)
        tr.gauge("power.total_mw", power.total_mw)
        if _corrupting(plan, "power", config):
            power = dataclasses.replace(
                power, switching_mw=-abs(power.switching_mw) - 1.0)

    drv = sum(r.drv_count for r in routing_results.values())
    tr.gauge("route.drv_total", drv)
    front_wl = routing_results[Side.FRONT].total_wirelength_nm / 1000.0
    back_wl = (routing_results[Side.BACK].total_wirelength_nm / 1000.0
               if Side.BACK in routing_results else 0.0)

    result = PPAResult(
        label=config.label,
        arch=config.arch,
        routing_label=tech.routing_label,
        pin_density_label=(
            pin_density_label(config.backside_pin_fraction)
            if config.arch == "ffet" and config.back_layers else ""
        ),
        target_frequency_ghz=config.target_frequency_ghz,
        target_utilization=config.utilization,
        achieved_utilization=util,
        core_area_um2=die.area_um2,
        cell_area_um2=netlist.total_cell_area_nm2(library) / 1e6,
        cell_count=len(netlist.instances),
        achieved_frequency_ghz=achieved_ghz,
        timing=timing,
        power=power,
        drv_count=drv,
        total_wirelength_um=front_wl + back_wl,
        front_wirelength_um=front_wl,
        back_wirelength_um=back_wl,
        tap_cell_count=len(powerplan.tap_cells),
        cts_buffers=cts_report.buffers,
        placement_feasible=True,
    )
    guard.check_result(result)
    if return_artifacts:
        return FlowArtifacts(
            library=library, netlist=netlist, die=die, powerplan=powerplan,
            placement=placement, cts_report=cts_report,
            routing_results=routing_results, defs=defs, merged_def=merged,
            extraction=extraction, result=result,
            trace=tr.finish() if tr.enabled else telemetry.Trace(),
        )
    return result
