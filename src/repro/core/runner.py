"""Parallel sweep execution over a process pool, with result caching.

The paper's headline figures are all sweeps — dozens of independent
full-flow runs over utilization grids and pin-density DoEs — so the
:class:`SweepRunner` is the one place fan-out, caching and timing are
handled for every sweep entry point (``repro.core.sweeps``,
``repro.core.doe``, the CLI and the ``scripts/run_*.py`` drivers):

* ``jobs`` workers on a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs=None`` reads ``$REPRO_JOBS``, defaulting to serial; ``jobs=0``
  means one worker per core);
* results come back in submission order regardless of completion order,
  so parallel sweeps are drop-in replacements for the serial loops;
* a worker hitting :class:`~repro.pnr.PlacementError` returns a
  :class:`~repro.core.ppa.FailedRun` instead of poisoning the pool;
* unpicklable factories/configs and broken pools degrade gracefully to
  the serial path (counted in :attr:`SweepStats.serial_fallbacks`);
* with a :class:`~repro.core.cache.FlowCache` attached, previously
  computed (config, netlist, code-version) points are served from disk
  and only the misses are executed.

Per-run wall time and hit/miss counters accumulate in
:attr:`SweepRunner.stats` and are printed by the CLI sweep summaries.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent import futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..netlist import Netlist
from ..pnr import PlacementError
from . import telemetry
from .cache import FlowCache, netlist_fingerprint
from .config import FlowConfig
from .flow import run_flow
from .ppa import FailedRun, PPAResult

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit > ``$REPRO_JOBS`` > 1 (serial).

    ``0`` (or any non-positive count) means one worker per CPU core.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def run_once(netlist_factory: Callable[[], Netlist],
             config: FlowConfig,
             tracer: "telemetry.Tracer | None" = None
             ) -> PPAResult | FailedRun:
    """Run one flow; a placement failure becomes a :class:`FailedRun`."""
    try:
        return run_flow(netlist_factory, config, tracer=tracer)
    except PlacementError as exc:
        return FailedRun(
            label=config.label,
            target_utilization=config.utilization,
            reason=str(exc),
        )


def _timed_run(netlist_factory: Callable[[], Netlist],
               config: FlowConfig, trace: bool = False
               ) -> tuple[PPAResult | FailedRun, float, telemetry.Trace | None]:
    # Module-level so the process pool can pickle it as a task target.
    # With ``trace`` the worker builds a Tracer and ships the finished
    # (picklable) Trace back to the parent alongside the result.
    tracer = telemetry.Tracer(label=config.label) if trace else None
    start = time.perf_counter()
    result = run_once(netlist_factory, config, tracer=tracer)
    wall = time.perf_counter() - start
    return result, wall, tracer.finish() if tracer is not None else None


@dataclass(frozen=True)
class RunRecord:
    """One sweep point: its config, outcome, wall time and provenance."""

    config: FlowConfig
    result: PPAResult | FailedRun
    wall_time_s: float
    cache_hit: bool = False
    #: Per-run telemetry (None unless the runner traces).
    trace: telemetry.Trace | None = field(default=None, compare=False)


@dataclass
class SweepStats:
    """Aggregated counters across every sweep a runner has executed."""

    runs: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    parallel_runs: int = 0
    serial_fallbacks: int = 0
    #: Summed per-run wall time (serial-equivalent cost).
    run_time_s: float = 0.0
    #: End-to-end time spent inside ``run_records`` calls.
    elapsed_s: float = 0.0
    #: Sweep-level stage breakdown, merged from per-run traces (empty
    #: unless the runner traces).
    stage_time_s: dict[str, float] = field(default_factory=dict)
    #: Sweep-level counters, merged from per-run traces.
    counters: dict[str, float] = field(default_factory=dict)

    def record(self, rec: RunRecord) -> None:
        self.runs += 1
        if rec.cache_hit:
            self.cache_hits += 1
        else:
            self.executed += 1
            self.run_time_s += rec.wall_time_s
        if isinstance(rec.result, FailedRun):
            self.failed += 1
        if rec.trace is not None:
            self.absorb_trace(rec.trace)

    def absorb_trace(self, trace: telemetry.Trace) -> None:
        """Merge one trace into the sweep-level stage/counter totals."""
        for name, seconds in trace.stage_times().items():
            self.stage_time_s[name] = \
                self.stage_time_s.get(name, 0.0) + seconds
        telemetry.merge_counters(self.counters, trace.counters)

    def stage_summary(self) -> str:
        """The per-stage time/percentage table over every traced run."""
        return telemetry.format_stage_table(self.stage_time_s,
                                            title="sweep stage breakdown")

    def summary(self) -> str:
        parts = [
            f"{self.runs} runs",
            f"{self.cache_hits} cached",
            f"{self.executed} executed ({self.parallel_runs} parallel)",
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.serial_fallbacks:
            parts.append(f"{self.serial_fallbacks} serial fallbacks")
        return (f"sweep: {', '.join(parts)} in {self.elapsed_s:.1f}s wall "
                f"({self.run_time_s:.1f}s flow time)")


class SweepRunner:
    """Fans ``run_once`` calls out over a process pool, cache first.

    One runner can serve many sweeps; its :attr:`stats` accumulate
    across calls.  With ``jobs=1`` (the default without ``$REPRO_JOBS``)
    everything runs serially in-process, which keeps library master
    caches warm and behavior identical to the historical loops.
    """

    def __init__(self, jobs: int | None = None,
                 cache: FlowCache | None = None,
                 trace_dir: str | os.PathLike | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.stats = SweepStats()
        #: When set, every executed run is traced (worker processes
        #: ship their traces back) and one ``run-NNNN.jsonl`` file per
        #: run lands here, plus ``sweep-NNNN.jsonl`` files holding the
        #: parent-side cache-hit spans; ``repro trace report <dir>``
        #: aggregates them.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._trace_seq = 0

    # -- public API ---------------------------------------------------------
    def run_one(self, netlist_factory: Callable[[], Netlist],
                config: FlowConfig) -> PPAResult | FailedRun:
        return self.run_records(netlist_factory, [config])[0].result

    def run_many(self, netlist_factory: Callable[[], Netlist],
                 configs: Sequence[FlowConfig]
                 ) -> list[PPAResult | FailedRun]:
        return [rec.result
                for rec in self.run_records(netlist_factory, configs)]

    def run_records(self, netlist_factory: Callable[[], Netlist],
                    configs: Sequence[FlowConfig]) -> list[RunRecord]:
        """Run every config; records come back in ``configs`` order."""
        configs = list(configs)
        started = time.perf_counter()
        tracing = self.trace_dir is not None
        sweep_tracer = telemetry.Tracer(label="sweep") if tracing \
            else telemetry.NULL_TRACER
        records: list[RunRecord | None] = [None] * len(configs)
        keys: list[str | None] = [None] * len(configs)
        pending = list(range(len(configs)))

        duplicates: list[tuple[int, int]] = []
        if self.cache is not None and configs:
            fingerprint = netlist_fingerprint(netlist_factory())
            misses = []
            first_miss: dict[str, int] = {}
            with telemetry.activate(sweep_tracer):
                # Cache hits are recorded by FlowCache.get as zero-cost
                # ``cache_hit`` spans on the active (sweep) tracer.
                for i in pending:
                    keys[i] = self.cache.key_for(configs[i], fingerprint)
                    hit = self.cache.get(keys[i])
                    if hit is not None:
                        records[i] = RunRecord(configs[i], hit, 0.0,
                                               cache_hit=True)
                    elif keys[i] in first_miss:
                        # Identical point twice in one batch: run it once.
                        duplicates.append((i, first_miss[keys[i]]))
                    else:
                        first_miss[keys[i]] = i
                        misses.append(i)
            pending = misses

        if pending:
            outcomes = None
            if self.jobs > 1 and len(pending) > 1:
                outcomes = self._run_pool(
                    netlist_factory, [configs[i] for i in pending],
                    trace=tracing)
            if outcomes is None:
                outcomes = [_timed_run(netlist_factory, configs[i],
                                       trace=tracing)
                            for i in pending]
            else:
                self.stats.parallel_runs += len(pending)
            for i, (result, wall, trace) in zip(pending, outcomes):
                records[i] = RunRecord(configs[i], result, wall, trace=trace)
                if self.cache is not None and keys[i] is not None:
                    self.cache.put(keys[i], result)
        for i, source in duplicates:
            records[i] = RunRecord(configs[i], records[source].result, 0.0,
                                   cache_hit=True)

        for rec in records:
            self.stats.record(rec)
        if tracing:
            self._write_traces(records, sweep_tracer)
        self.stats.elapsed_s += time.perf_counter() - started
        return records

    # -- internals ----------------------------------------------------------
    def _write_traces(self, records: list[RunRecord],
                      sweep_tracer: "telemetry.Tracer") -> None:
        """Emit one JSONL file per executed run, plus the sweep trace."""
        for rec in records:
            if rec.trace is not None:
                rec.trace.write(
                    self.trace_dir / f"run-{self._trace_seq:04d}.jsonl")
                self._trace_seq += 1
        sweep_trace = sweep_tracer.finish()
        if sweep_trace.spans or sweep_trace.counters:
            self.stats.absorb_trace(sweep_trace)
            sweep_trace.write(
                self.trace_dir / f"sweep-{self._trace_seq:04d}.jsonl")
            self._trace_seq += 1

    def _run_pool(self, netlist_factory, configs, trace=False):
        """Pool execution in submission order; None -> use serial path."""
        try:
            pickle.dumps((netlist_factory, configs))
        except Exception:
            self.stats.serial_fallbacks += 1
            return None
        workers = min(self.jobs, len(configs))
        try:
            with futures.ProcessPoolExecutor(max_workers=workers) as pool:
                tasks = [pool.submit(_timed_run, netlist_factory, config,
                                     trace)
                         for config in configs]
                return [task.result() for task in tasks]
        except (futures.process.BrokenProcessPool, OSError, ImportError):
            self.stats.serial_fallbacks += 1
            return None
