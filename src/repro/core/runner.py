"""Fault-tolerant parallel sweep execution with caching and checkpoints.

The paper's headline figures are all sweeps — dozens of independent
full-flow runs over utilization grids and pin-density DoEs — so the
:class:`SweepRunner` is the one place fan-out, caching, timing and
failure handling live for every sweep entry point
(``repro.core.sweeps``, ``repro.core.doe``, the CLI and the
``scripts/run_*.py`` drivers):

* ``jobs`` workers on a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs=None`` reads ``$REPRO_JOBS``, defaulting to serial; ``jobs=0``
  means one worker per core);
* results come back in submission order regardless of completion order,
  so parallel sweeps are drop-in replacements for the serial loops;
* **quarantine**: a run that raises — placement infeasibility, a guard
  violation, an injected fault, anything — becomes a structured
  :class:`~repro.core.ppa.FailedRun` carrying the failing stage, cause
  and attempt count.  One bad run never aborts a sweep; the healthy
  points always come back;
* **retry with backoff**: transient failures (worker death, ``OSError``,
  timeouts, :class:`~repro.core.errors.TransientError`) are retried up
  to :attr:`RetryPolicy.max_attempts` with exponential backoff before
  being quarantined;
* **per-run timeout**: :attr:`RetryPolicy.timeout_s` arms a wall-clock
  alarm inside each run (``SIGALRM``), so a hung stage becomes a
  retryable :class:`~repro.core.errors.RunTimeout` instead of wedging
  the sweep, plus a parent-side watchdog for workers the alarm cannot
  reach;
* **pool salvage**: a :class:`BrokenProcessPool` no longer throws away
  completed work — finished futures are harvested and only the
  unfinished configs are re-dispatched to a fresh pool (counted in
  :attr:`SweepStats.pool_restarts`); repeated breakage degrades the
  remainder, not the whole sweep, to the serial path;
* **checkpoint/resume**: with a :class:`SweepCheckpoint` attached,
  every settled run is appended (fsync'd) to a JSONL file keyed by the
  sweep's content identity, so an interrupted sweep resumes exactly
  where it crashed (``--resume``);
* with a :class:`~repro.core.cache.FlowCache` attached, previously
  computed (config, netlist, code-version) points are served from disk
  and only the misses are executed.  When fault injection is active
  (:mod:`repro.core.faults`) the cache is bypassed so injected
  failures can never poison real results.

Per-run wall time and hit/miss/retry/timeout/quarantine counters
accumulate in :attr:`SweepRunner.stats` and are printed by the CLI
sweep summaries; when tracing, the same events are counted on the
sweep trace (``runner.*``) so ``repro trace report`` surfaces them.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import time
from concurrent import futures
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..netlist import Netlist
from ..pnr import PlacementError
from . import faults as faults_mod
from . import telemetry
from .cache import (
    FlowCache,
    cache_key,
    netlist_fingerprint,
    result_from_payload,
    result_to_payload,
)
from .config import FlowConfig
from .errors import FlowError, RunTimeout, wrap_stage_error
from .flow import run_flow
from .journal import JsonlJournal
from .ppa import FailedRun, PPAResult
from .stages import StageStore

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"
#: Environment variable supplying the default per-run timeout, seconds.
TIMEOUT_ENV = "REPRO_TIMEOUT"
#: Environment variable supplying the default max attempts per run.
RETRIES_ENV = "REPRO_RETRIES"
#: Environment variable overriding a script's default checkpoint path.
CHECKPOINT_ENV = "REPRO_CHECKPOINT"

#: Extra parent-side patience beyond the per-run timeout before the
#: watchdog declares a worker wedged (the in-worker alarm should always
#: fire first; the watchdog exists for workers it cannot reach).
WATCHDOG_GRACE_S = 30.0


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit > ``$REPRO_JOBS`` > 1 (serial).

    ``0`` (or any non-positive count) means one worker per CPU core.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def script_runner(default_checkpoint: str,
                  jobs: int | None = None) -> SweepRunner:
    """The one-line runner for ``scripts/run_*.py`` batch drivers.

    Result cache on unless ``$REPRO_NO_CACHE`` is set, crash-safe
    checkpoint at ``$REPRO_CHECKPOINT`` (default ``default_checkpoint``;
    empty disables it), workers from ``$REPRO_JOBS`` — the exact policy
    every headline script used to spell out by hand.
    """
    from .cache import cache_from_env
    checkpoint = os.environ.get(CHECKPOINT_ENV, default_checkpoint)
    return SweepRunner(jobs=jobs, cache=cache_from_env(),
                       checkpoint=checkpoint or None)


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner treats a run that fails or hangs.

    ``max_attempts`` bounds the total tries per run (first run plus
    retries) for *transient* failures; fatal failures are quarantined
    on the first attempt.  Backoff before attempt ``n+1`` is
    ``backoff_base_s * backoff_factor**(n-1)`` capped at
    ``backoff_cap_s``.  ``timeout_s`` is the per-run wall-clock budget
    (``None`` = unlimited).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap_s: float = 8.0
    timeout_s: float | None = None

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Defaults, overridden by ``$REPRO_TIMEOUT``/``$REPRO_RETRIES``."""
        kwargs = {}
        timeout = _env_float(TIMEOUT_ENV)
        if timeout is not None:
            kwargs["timeout_s"] = timeout
        retries = _env_float(RETRIES_ENV)
        if retries is not None:
            kwargs["max_attempts"] = max(1, int(retries))
        return cls(**kwargs)

    def backoff_s(self, attempt: int) -> float:
        """Delay before retrying after the ``attempt``-th try failed."""
        if self.backoff_base_s <= 0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)
        return min(delay, self.backoff_cap_s)


@dataclass(frozen=True)
class _TransientFailure:
    """A retryable failure shipped back from a worker (picklable)."""

    stage: str
    cause: str
    message: str


def _failed_from_error(config: FlowConfig, err: FlowError,
                       attempts: int = 1) -> FailedRun:
    """Quarantine one structured flow error as a :class:`FailedRun`."""
    return FailedRun(
        label=config.label,
        target_utilization=config.utilization,
        reason=str(err),
        stage=err.stage,
        cause=err.cause or type(err).__name__,
        attempts=attempts,
        quarantined=not isinstance(err, PlacementError),
    )


def _failed_from_transient(config: FlowConfig, failure: _TransientFailure,
                           attempts: int) -> FailedRun:
    """Quarantine a transient failure whose retries are exhausted."""
    return FailedRun(
        label=config.label,
        target_utilization=config.utilization,
        reason=failure.message,
        stage=failure.stage,
        cause=failure.cause,
        attempts=attempts,
        quarantined=True,
    )


def run_once(netlist_factory: Callable[[], Netlist],
             config: FlowConfig,
             tracer: "telemetry.Tracer | None" = None,
             store: StageStore | None = None
             ) -> PPAResult | FailedRun:
    """Run one flow; any flow failure becomes a :class:`FailedRun`.

    Single attempt, no timeout — the retry/timeout machinery lives in
    :class:`SweepRunner`.  Placement infeasibility yields the classic
    non-quarantined record; every other
    :class:`~repro.core.errors.FlowError` is quarantined with its stage
    and cause attached.  ``store`` optionally replays cached stage
    prefixes (see :mod:`repro.core.stages`).
    """
    try:
        return run_flow(netlist_factory, config, tracer=tracer, store=store)
    except FlowError as exc:
        return _failed_from_error(config, exc)


@contextmanager
def _run_alarm(timeout_s: float | None, config: FlowConfig):
    """Arm a wall-clock alarm that aborts the run with a RunTimeout.

    Uses ``SIGALRM``; silently a no-op where unavailable (non-POSIX,
    non-main thread) — the parent-side watchdog covers those workers.
    """
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(
            f"run exceeded its {timeout_s:g}s wall-clock budget",
            "", config.label, cause="RunTimeout")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not the main thread: no alarm, watchdog only
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _timed_run(netlist_factory: Callable[[], Netlist],
               config: FlowConfig, trace: bool = False,
               timeout_s: float | None = None, attempt: int = 1,
               delay_s: float = 0.0, cache: FlowCache | None = None
               ) -> tuple[PPAResult | FailedRun | _TransientFailure, float,
                          telemetry.Trace | None, dict[str, float]]:
    # Module-level so the process pool can pickle it as a task target.
    # With ``trace`` the worker builds a Tracer and ships the finished
    # (picklable) Trace back to the parent alongside the result.
    # Transient failures come back as a marker so the parent can apply
    # its retry policy; fatal ones come back already quarantined.
    # With ``cache`` (picklable: a directory + version) the worker
    # builds a StageStore on it, so every worker shares one on-disk
    # per-stage artifact store — locked, so concurrent missers of one
    # stage key single-flight it (repro.core.locking) even across
    # unrelated sweep processes; the store's hit/miss counters travel
    # back as the outcome's fourth element.
    if delay_s > 0:
        time.sleep(delay_s)  # retry backoff, served in the worker
    faults_mod.set_attempt(attempt)
    tracer = telemetry.Tracer(label=config.label) if trace else None
    store = StageStore(cache) if cache is not None else None
    start = time.perf_counter()
    try:
        with _run_alarm(timeout_s, config):
            result: PPAResult | FailedRun | _TransientFailure = \
                run_flow(netlist_factory, config, tracer=tracer, store=store)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        err = wrap_stage_error(exc, "", config.label)
        if err.transient:
            result = _TransientFailure(stage=err.stage,
                                       cause=err.cause or type(err).__name__,
                                       message=str(err))
        else:
            result = _failed_from_error(config, err, attempts=attempt)
    wall = time.perf_counter() - start
    return (result, wall, tracer.finish() if tracer is not None else None,
            store.counters() if store is not None else {})


@dataclass(frozen=True)
class RunRecord:
    """One sweep point: its config, outcome, wall time and provenance."""

    config: FlowConfig
    result: PPAResult | FailedRun
    wall_time_s: float
    cache_hit: bool = False
    #: Served from a sweep checkpoint written by an earlier, interrupted
    #: invocation (``--resume``).
    resumed: bool = False
    #: Per-run telemetry (None unless the runner traces).
    trace: telemetry.Trace | None = field(default=None, compare=False)


@dataclass
class SweepStats:
    """Aggregated counters across every sweep a runner has executed."""

    runs: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    parallel_runs: int = 0
    serial_fallbacks: int = 0
    #: Transient-failure retries performed (each re-run counts once).
    retries: int = 0
    #: Runs that hit the per-run wall-clock timeout (before retries).
    timeouts: int = 0
    #: FailedRun records quarantined for unexpected causes (anything
    #: but plain placement infeasibility).
    quarantined: int = 0
    #: Broken process pools salvaged (completed futures kept, the
    #: unfinished remainder re-dispatched to a fresh pool).
    pool_restarts: int = 0
    #: Records served from a sweep checkpoint (``--resume``).
    resumed: int = 0
    #: Summed per-run wall time (serial-equivalent cost).
    run_time_s: float = 0.0
    #: End-to-end time spent inside ``run_records`` calls.
    elapsed_s: float = 0.0
    #: Sweep-level stage breakdown, merged from per-run traces (empty
    #: unless the runner traces).
    stage_time_s: dict[str, float] = field(default_factory=dict)
    #: Sweep-level counters, merged from per-run traces.
    counters: dict[str, float] = field(default_factory=dict)
    #: Stage-store replays across all executed runs (``stage_cache.*``).
    stage_hits: int = 0
    #: Stage-store misses (stages actually executed) across all runs.
    stage_misses: int = 0
    #: Per-stage store counters (``stage_cache.hit.<stage>`` /
    #: ``stage_cache.miss.<stage>``), merged from every run's store.
    stage_counters: dict[str, float] = field(default_factory=dict)

    def record(self, rec: RunRecord) -> None:
        self.runs += 1
        if rec.cache_hit:
            self.cache_hits += 1
        elif rec.resumed:
            self.resumed += 1
        else:
            self.executed += 1
            self.run_time_s += rec.wall_time_s
        if isinstance(rec.result, FailedRun):
            self.failed += 1
            if rec.result.quarantined:
                self.quarantined += 1
        if rec.trace is not None:
            self.absorb_trace(rec.trace)

    def absorb_trace(self, trace: telemetry.Trace) -> None:
        """Merge one trace into the sweep-level stage/counter totals."""
        for name, seconds in trace.stage_times().items():
            self.stage_time_s[name] = \
                self.stage_time_s.get(name, 0.0) + seconds
        telemetry.merge_counters(self.counters, trace.counters)

    def absorb_stage_counters(self, counters: dict[str, float]) -> None:
        """Merge one run's stage-store counters into the sweep totals."""
        if not counters:
            return
        self.stage_hits += int(counters.get("stage_cache.hits", 0))
        self.stage_misses += int(counters.get("stage_cache.misses", 0))
        telemetry.merge_counters(self.stage_counters, counters)

    def stage_hit_rates(self) -> dict[str, float]:
        """Per-stage store hit rate over every executed run."""
        rates: dict[str, float] = {}
        stages = {name.split(".", 2)[2] for name in self.stage_counters
                  if name.startswith(("stage_cache.hit.",
                                      "stage_cache.miss."))}
        for stage in sorted(stages):
            hits = self.stage_counters.get(f"stage_cache.hit.{stage}", 0.0)
            misses = self.stage_counters.get(f"stage_cache.miss.{stage}", 0.0)
            if hits + misses:
                rates[stage] = hits / (hits + misses)
        return rates

    def stage_summary(self) -> str:
        """The per-stage time/percentage table over every traced run."""
        return telemetry.format_stage_table(self.stage_time_s,
                                            title="sweep stage breakdown")

    def summary(self) -> str:
        parts = [
            f"{self.runs} runs",
            f"{self.cache_hits} cached",
            f"{self.executed} executed ({self.parallel_runs} parallel)",
        ]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.pool_restarts:
            parts.append(f"{self.pool_restarts} pool restarts")
        if self.serial_fallbacks:
            parts.append(f"{self.serial_fallbacks} serial fallbacks")
        if self.stage_hits or self.stage_misses:
            parts.append(f"{self.stage_hits}/"
                         f"{self.stage_hits + self.stage_misses} "
                         "stage replays")
        return (f"sweep: {', '.join(parts)} in {self.elapsed_s:.1f}s wall "
                f"({self.run_time_s:.1f}s flow time)")


class SweepCheckpoint:
    """Append-only, crash-safe record of a sweep's settled runs.

    A :class:`~repro.core.journal.JsonlJournal` whose header binds the
    file to one sweep identity (the hash of every run's
    content-addressed key, so a checkpoint can never resume a
    *different* sweep), then one fsync'd line per settled run.  A
    process killed mid-write leaves at most one truncated trailing
    line, which :meth:`begin` skips.
    """

    VERSION = 1

    def __init__(self, path: str | os.PathLike, resume: bool = True) -> None:
        self._journal = JsonlJournal(path, "sweep", self.VERSION,
                                     resume=resume)

    @property
    def path(self) -> Path:
        return self._journal.path

    @staticmethod
    def sweep_id(keys: Sequence[str]) -> str:
        blob = json.dumps(list(keys), separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    @staticmethod
    def _accept(payload: dict) -> bool:
        # A run event whose payload does not decode is as good as torn:
        # truncate the replay there.
        if payload.get("ev") != "run":
            return True
        try:
            result_from_payload(payload["payload"])
        except (KeyError, TypeError, ValueError):
            return False
        return True

    def begin(self, sweep_id: str) -> dict[str, tuple]:
        """Open for appending; returns previously settled ``key ->
        (result, wall_time_s)`` entries when resuming the same sweep."""
        events = self._journal.begin({"id": sweep_id}, accept=self._accept)
        entries: dict[str, tuple] = {}
        for payload in events:
            if payload.get("ev") == "run":
                entries[payload["key"]] = \
                    (result_from_payload(payload["payload"]),
                     payload.get("wall", 0.0))
        return entries

    def record(self, key: str, result: PPAResult | FailedRun,
               wall_time_s: float) -> None:
        """Append one settled run; durable once this returns."""
        self._journal.append({
            "ev": "run", "key": key, "wall": wall_time_s,
            "payload": result_to_payload(result),
        })

    def finish(self) -> None:
        """Close out a completed sweep (the file remains resumable)."""
        if self._journal.open:
            self._journal.append({"ev": "end"})
            self._journal.close()


class SweepRunner:
    """Fans ``run_once`` calls out over a process pool, cache first.

    One runner can serve many sweeps; its :attr:`stats` accumulate
    across calls.  With ``jobs=1`` (the default without ``$REPRO_JOBS``)
    everything runs serially in-process, which keeps library master
    caches warm and behavior identical to the historical loops.  The
    retry policy applies identically on the serial and pool paths, so
    ``--jobs`` never changes what a sweep returns.
    """

    def __init__(self, jobs: int | None = None,
                 cache: FlowCache | None = None,
                 trace_dir: str | os.PathLike | None = None,
                 retry: RetryPolicy | None = None,
                 checkpoint: str | os.PathLike | None = None,
                 resume: bool = True,
                 refresh: bool = False) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        #: With ``refresh`` the full-result cache is not *read* (every
        #: config re-runs its flow) but results are still written and
        #: the per-stage artifact store stays active — so a refreshed
        #: sweep replays warm stage prefixes instead of recomputing
        #: them (CLI ``--refresh``).
        self.refresh = refresh
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        #: Path of the crash-safe sweep checkpoint (None = disabled).
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.resume = resume
        self.stats = SweepStats()
        #: When set, every executed run is traced (worker processes
        #: ship their traces back) and one ``run-NNNN.jsonl`` file per
        #: run lands here, plus ``sweep-NNNN.jsonl`` files holding the
        #: parent-side cache-hit spans; ``repro trace report <dir>``
        #: aggregates them.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._trace_seq = 0

    # -- public API ---------------------------------------------------------
    def run_one(self, netlist_factory: Callable[[], Netlist],
                config: FlowConfig) -> PPAResult | FailedRun:
        return self.run_records(netlist_factory, [config])[0].result

    def run_many(self, netlist_factory: Callable[[], Netlist],
                 configs: Sequence[FlowConfig]
                 ) -> list[PPAResult | FailedRun]:
        return [rec.result
                for rec in self.run_records(netlist_factory, configs)]

    def run_records(self, netlist_factory: Callable[[], Netlist],
                    configs: Sequence[FlowConfig]) -> list[RunRecord]:
        """Run every config; records come back in ``configs`` order."""
        configs = list(configs)
        started = time.perf_counter()
        tracing = self.trace_dir is not None
        sweep_tracer = telemetry.Tracer(label="sweep") if tracing \
            else telemetry.NULL_TRACER
        records: list[RunRecord | None] = [None] * len(configs)
        keys: list[str | None] = [None] * len(configs)
        pending = list(range(len(configs)))

        # Flow fault injection must never touch (or be hidden by) real
        # cached results: an active flow plan bypasses the cache
        # entirely.  Cache-point clauses (cache.*/lock.*) don't count —
        # they exist to exercise the store's own recovery paths.
        cache = self.cache if not faults_mod.faults_active() else None
        need_keys = (cache is not None or self.checkpoint is not None) \
            and configs
        if need_keys:
            fingerprint = netlist_fingerprint(netlist_factory())
            version = cache.version if cache is not None else None
            for i in pending:
                keys[i] = cache_key(configs[i], fingerprint, version=version)

        duplicates: list[tuple[int, int]] = []
        if cache is not None and configs:
            misses = []
            first_miss: dict[str, int] = {}
            with telemetry.activate(sweep_tracer):
                # Cache hits are recorded by FlowCache.get as zero-cost
                # ``cache_hit`` spans on the active (sweep) tracer.
                # ``refresh`` skips the reads (every point re-runs) but
                # keeps the duplicate detection and the writes below.
                for i in pending:
                    hit = None if self.refresh else cache.get(keys[i])
                    if hit is not None:
                        records[i] = RunRecord(configs[i], hit, 0.0,
                                               cache_hit=True)
                    elif keys[i] in first_miss:
                        # Identical point twice in one batch: run it once.
                        duplicates.append((i, first_miss[keys[i]]))
                    else:
                        first_miss[keys[i]] = i
                        misses.append(i)
            pending = misses

        ckpt: SweepCheckpoint | None = None
        if self.checkpoint is not None and configs:
            ckpt = SweepCheckpoint(self.checkpoint, resume=self.resume)
            settled = ckpt.begin(SweepCheckpoint.sweep_id(
                [k for k in keys if k is not None]))
            still_pending = []
            for i in pending:
                entry = settled.get(keys[i])
                if entry is not None:
                    result, wall = entry
                    records[i] = RunRecord(configs[i], result, wall,
                                           resumed=True)
                else:
                    still_pending.append(i)
            pending = still_pending

        def settle(slot: int, outcome: tuple) -> None:
            i = pending[slot]
            result, wall, trace = outcome[:3]
            records[i] = RunRecord(configs[i], result, wall, trace=trace)
            if len(outcome) > 3 and outcome[3]:
                self.stats.absorb_stage_counters(outcome[3])
            if ckpt is not None and keys[i] is not None:
                ckpt.record(keys[i], result, wall)

        if pending:
            ran_in_pool = False
            if self.jobs > 1 and len(pending) > 1:
                ran_in_pool = self._run_pool(
                    netlist_factory, [configs[i] for i in pending],
                    settle, sweep_tracer, trace=tracing, cache=cache)
            if not ran_in_pool:
                for slot in range(len(pending)):
                    settle(slot, self._run_serial(
                        netlist_factory, configs[pending[slot]],
                        sweep_tracer, trace=tracing, cache=cache))
            else:
                self.stats.parallel_runs += len(pending)
            if cache is not None:
                for i in pending:
                    result = records[i].result
                    # Quarantined failures are not cached: a transient
                    # failure may well succeed on the next invocation,
                    # and must not be served as a permanent result.
                    if keys[i] is not None and not (
                            isinstance(result, FailedRun)
                            and result.quarantined):
                        cache.put(keys[i], result)
        if ckpt is not None:
            ckpt.finish()
        for i, source in duplicates:
            records[i] = RunRecord(configs[i], records[source].result, 0.0,
                                   cache_hit=True)

        for rec in records:
            self.stats.record(rec)
        if tracing:
            self._write_traces(records, sweep_tracer)
        self.stats.elapsed_s += time.perf_counter() - started
        return records

    # -- internals ----------------------------------------------------------
    def _note(self, tracer, event: str, count: int = 1) -> None:
        """Mirror a runner event into the sweep trace counters."""
        tracer.count(f"runner.{event}", count)

    def _settle_transient(self, outcome, config: FlowConfig, attempt: int,
                          tracer) -> tuple:
        """Bookkeeping shared by both paths when a try comes back.

        Returns ``(final_outcome_or_None, retry: bool)`` — final when
        the run settled (success, fatal, or retries exhausted), retry
        when the caller should run it again.
        """
        result = outcome[0]
        if isinstance(result, _TransientFailure):
            if result.cause == "RunTimeout":
                self.stats.timeouts += 1
                self._note(tracer, "timeouts")
            if attempt < self.retry.max_attempts:
                self.stats.retries += 1
                self._note(tracer, "retries")
                return None, True
            failed = _failed_from_transient(config, result, attempt)
            self._note(tracer, "quarantined")
            return (failed,) + tuple(outcome[1:]), False
        if isinstance(result, FailedRun) and result.quarantined:
            self._note(tracer, "quarantined")
        return outcome, False

    def _run_serial(self, netlist_factory, config: FlowConfig, tracer,
                    trace: bool = False,
                    cache: FlowCache | None = None) -> tuple:
        """One run on the serial path, with the full retry policy."""
        attempt = 1
        while True:
            outcome = _timed_run(netlist_factory, config, trace,
                                 self.retry.timeout_s, attempt,
                                 cache=cache)
            final, retry = self._settle_transient(outcome, config, attempt,
                                                  tracer)
            if not retry:
                return final
            time.sleep(self.retry.backoff_s(attempt))
            attempt += 1

    def _write_traces(self, records: list[RunRecord],
                      sweep_tracer: "telemetry.Tracer") -> None:
        """Emit one JSONL file per executed run, plus the sweep trace."""
        for rec in records:
            if rec.trace is not None:
                rec.trace.write(
                    self.trace_dir / f"run-{self._trace_seq:04d}.jsonl")
                self._trace_seq += 1
        sweep_trace = sweep_tracer.finish()
        if sweep_trace.spans or sweep_trace.counters:
            self.stats.absorb_trace(sweep_trace)
            sweep_trace.write(
                self.trace_dir / f"sweep-{self._trace_seq:04d}.jsonl")
            self._trace_seq += 1

    def _run_pool(self, netlist_factory, configs, settle, tracer,
                  trace=False, cache: FlowCache | None = None) -> bool:
        """Pool execution with retry, salvage and watchdog.

        Calls ``settle(slot, outcome)`` exactly once per config as runs
        finish (in completion order; the caller re-orders).  Returns
        False when the pool cannot be used at all (unpicklable inputs,
        pool construction failure) and nothing was settled — the caller
        then takes the serial path.
        """
        try:
            pickle.dumps((netlist_factory, configs))
        except Exception:
            self.stats.serial_fallbacks += 1
            return False

        n = len(configs)
        attempts = {slot: 1 for slot in range(n)}
        pending = list(range(n))
        #: Pool restarts tolerated before the remainder goes serial.
        max_restarts = max(3, self.retry.max_attempts)
        restarts = 0
        settled_any = False

        while pending:
            if restarts > max_restarts:
                # The pool keeps dying on this host: stop fighting it
                # and finish the remainder in-process.
                self.stats.serial_fallbacks += 1
                self._note(tracer, "serial_fallbacks")
                for slot in list(pending):
                    settle(slot, self._run_serial(
                        netlist_factory, configs[slot], tracer, trace,
                        cache=cache))
                    pending.remove(slot)
                return True

            workers = min(self.jobs, len(pending))
            try:
                pool = futures.ProcessPoolExecutor(max_workers=workers)
            except (OSError, ImportError):
                self.stats.serial_fallbacks += 1
                if not settled_any:
                    return False  # nothing settled yet: plain serial path
                self._note(tracer, "serial_fallbacks")
                for slot in list(pending):
                    settle(slot, self._run_serial(
                        netlist_factory, configs[slot], tracer, trace,
                        cache=cache))
                    pending.remove(slot)
                return True

            broken = False
            fut_map: dict = {}
            try:
                for slot in pending:
                    fut_map[pool.submit(
                        _timed_run, netlist_factory, configs[slot], trace,
                        self.retry.timeout_s, attempts[slot], 0.0,
                        cache)] = slot
                waiting = set(fut_map)
                watchdog = (None if self.retry.timeout_s is None
                            else self.retry.timeout_s + WATCHDOG_GRACE_S)
                while waiting:
                    done, waiting = futures.wait(
                        waiting, timeout=watchdog,
                        return_when=futures.FIRST_COMPLETED)
                    if not done:
                        # Watchdog: no progress for a whole timeout
                        # budget + grace.  Cancel what never started
                        # (retried on a fresh pool) and quarantine what
                        # is wedged beyond the in-worker alarm's reach.
                        for fut in waiting:
                            slot = fut_map[fut]
                            if fut.cancel():
                                continue  # still queued: just re-run it
                            self.stats.timeouts += 1
                            self._note(tracer, "timeouts")
                            self._note(tracer, "quarantined")
                            settle(slot, (FailedRun(
                                label=configs[slot].label,
                                target_utilization=configs[slot].utilization,
                                reason=("worker wedged past the "
                                        f"{self.retry.timeout_s:g}s timeout "
                                        "and its grace period"),
                                stage="", cause="RunTimeout",
                                attempts=attempts[slot], quarantined=True,
                            ), 0.0, None))
                            settled_any = True
                            pending.remove(slot)
                        pool.shutdown(wait=False, cancel_futures=True)
                        broken = True
                        restarts += 1
                        self.stats.pool_restarts += 1
                        self._note(tracer, "pool_restarts")
                        break
                    for fut in done:
                        slot = fut_map[fut]
                        try:
                            outcome = fut.result()
                        except futures.process.BrokenProcessPool:
                            broken = True
                            break
                        except (OSError, RuntimeError) as exc:
                            # Transport-level failure: treat like a
                            # transient worker failure of this run.
                            outcome = (_TransientFailure(
                                stage="", cause=type(exc).__name__,
                                message=str(exc)), 0.0, None)
                        final, retry = self._settle_transient(
                            outcome, configs[slot], attempts[slot], tracer)
                        if retry:
                            attempts[slot] += 1
                            fresh = pool.submit(
                                _timed_run, netlist_factory, configs[slot],
                                trace, self.retry.timeout_s, attempts[slot],
                                self.retry.backoff_s(attempts[slot] - 1),
                                cache)
                            fut_map[fresh] = slot
                            waiting.add(fresh)
                        else:
                            settle(slot, final)
                            settled_any = True
                            pending.remove(slot)
                    if broken:
                        break
            except futures.process.BrokenProcessPool:
                broken = True
            finally:
                pool.shutdown(wait=not broken, cancel_futures=True)

            if broken and pending:
                # Salvage: completed futures already settled above; the
                # unfinished remainder is re-dispatched to a fresh pool.
                # Each re-dispatch consumes an attempt so a run that
                # keeps killing its worker is eventually quarantined.
                restarts += 1
                self.stats.pool_restarts += 1
                self._note(tracer, "pool_restarts")
                for slot in list(pending):
                    if attempts[slot] >= self.retry.max_attempts:
                        self._note(tracer, "quarantined")
                        settle(slot, (FailedRun(
                            label=configs[slot].label,
                            target_utilization=configs[slot].utilization,
                            reason=(f"worker process died "
                                    f"{attempts[slot]} times "
                                    "(BrokenProcessPool)"),
                            stage="", cause="WorkerDied",
                            attempts=attempts[slot], quarantined=True,
                        ), 0.0, None))
                        settled_any = True
                        pending.remove(slot)
                    else:
                        attempts[slot] += 1
                        self.stats.retries += 1
                        self._note(tracer, "retries")
        return True
