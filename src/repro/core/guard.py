"""The flow guard: post-stage invariant checks on flow artifacts.

The flow's stages hand artifacts to each other (a placement to CTS, a
decomposition to the routers, a merged DEF to extraction).  A stage
that silently produces a damaged artifact — a lost cell location, a
sink dropped from every routing side, a duplicated DEF segment, an
absurd PPA number — poisons everything downstream, and a sweep would
happily cache and report the garbage.  The :class:`FlowGuard` runs
cheap invariant checks at the stage boundaries:

* **placement legality** — every instance has exactly one location and
  it lies inside the die;
* **net decomposition completeness** — Algorithm 1 assigned every sink
  of every net to exactly one wafer side (no lost or doubled sinks);
* **merged-DEF consistency** — the component list matches the netlist
  exactly and no net carries duplicated route segments;
* **PPA sanity** — frequency/power/area/wirelength are finite and in
  physically meaningful ranges.

Modes (``$REPRO_GUARD`` or CLI ``--guard``):

* ``strict`` (default) — a violation raises
  :class:`~repro.core.errors.GuardViolation`, which the sweep runner
  quarantines as a structured failure;
* ``warn`` — violations are recorded (``guard.violations`` telemetry
  counter, :attr:`FlowGuard.violations`, a ``RuntimeWarning``) and the
  run continues;
* ``off`` — checks are skipped entirely.

Checks are read-only: guarding a healthy run never changes its
:class:`~repro.core.ppa.PPAResult`.
"""

from __future__ import annotations

import math
import os
import warnings
from typing import TYPE_CHECKING

from . import telemetry
from .errors import GuardViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ppa import PPAResult

#: Environment variable selecting the default guard mode.
GUARD_ENV = "REPRO_GUARD"

#: Recognized guard modes.
MODES = ("strict", "warn", "off")

#: Upper sanity bound on achieved frequency, GHz (nothing in this
#: technology clocks three orders of magnitude past the paper's 3 GHz).
MAX_SANE_FREQUENCY_GHZ = 1000.0

#: Upper sanity bound on block power, mW (paper-scale blocks draw mW).
MAX_SANE_POWER_MW = 1e6


def default_mode() -> str:
    """Guard mode from ``$REPRO_GUARD``; unknown values mean strict."""
    mode = os.environ.get(GUARD_ENV, "").strip().lower()
    return mode if mode in MODES else "strict"


class FlowGuard:
    """Runs post-stage invariant checks in strict/warn/off mode."""

    def __init__(self, mode: str | None = None) -> None:
        mode = mode if mode is not None else default_mode()
        if mode not in MODES:
            raise ValueError(f"unknown guard mode {mode!r} "
                             f"(expected one of {MODES})")
        self.mode = mode
        #: Violation messages recorded in ``warn`` mode (and, for
        #: inspection, the message of the strict raise).
        self.violations: list[str] = []

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    # -- violation plumbing --------------------------------------------------
    def _violate(self, stage: str, message: str) -> None:
        tracer = telemetry.current_tracer()
        tracer.count("guard.violations")
        self.violations.append(f"{stage}: {message}")
        if self.mode == "strict":
            raise GuardViolation(message, stage, cause="GuardViolation")
        warnings.warn(f"flow guard ({stage}): {message}", RuntimeWarning,
                      stacklevel=3)

    def _checked(self) -> None:
        telemetry.current_tracer().count("guard.checks")

    # -- stage checks --------------------------------------------------------
    def check_placement(self, netlist, die, placement,
                        legal: bool = False) -> None:
        """Every instance placed exactly once, inside the die bounds.

        With ``legal=True`` (post-legalization), additionally checks
        that no standard cell sits on top of a hard-macro footprint —
        global placement may transiently park cells there, legalization
        must not.
        """
        if not self.enabled:
            return
        self._checked()
        missing = [name for name in netlist.instances
                   if name not in placement.locations]
        if missing:
            self._violate(
                "placement",
                f"{len(missing)} instances have no location "
                f"(first: {sorted(missing)[:3]})")
            return
        bounds = die.bounds()
        astray = [name for name, p in placement.locations.items()
                  if not bounds.contains(p)]
        if astray:
            self._violate(
                "placement",
                f"{len(astray)} locations outside the die "
                f"(first: {sorted(astray)[:3]})")
            return
        macros = getattr(die, "macros", ())
        if legal and macros:
            macro_names = {m.name for m in macros}
            trapped = []
            for name, p in placement.locations.items():
                if name in macro_names:
                    continue
                for m in macros:
                    r = m.rect
                    if (r.x0_nm < p.x_nm < r.x1_nm
                            and r.y0_nm < p.y_nm < r.y1_nm):
                        trapped.append(name)
                        break
            if trapped:
                self._violate(
                    "legalization",
                    f"{len(trapped)} cells placed on a macro footprint "
                    f"(first: {sorted(trapped)[:3]})")

    def check_decomposition(self, netlist, decomposition) -> None:
        """Algorithm 1 kept every sink, on exactly one side."""
        if not self.enabled:
            return
        self._checked()
        if decomposition.bridges:
            # Bridging rewrites connectivity (new buffer instances take
            # over sinks); the exact-coverage invariant no longer holds.
            return
        covered: dict[str, list] = {}
        for (name, _side), sinks in decomposition.side_sinks.items():
            covered.setdefault(name, []).extend(sinks)
        for net_name, net in netlist.nets.items():
            want = sorted(net.sinks)
            got = sorted(covered.get(net_name, ()))
            if want != got:
                self._violate(
                    "routing",
                    f"net {net_name}: decomposition covers {len(got)} sinks, "
                    f"netlist has {len(want)}")
                return

    def check_merged_def(self, netlist, merged) -> None:
        """Every instance is a component; no net repeats a segment.

        The merged DEF may legitimately carry physical-only components
        (Power Tap Cells), so extras are fine — lost instances are not.
        """
        if not self.enabled:
            return
        self._checked()
        missing = set(netlist.instances) - set(merged.components)
        if missing:
            self._violate(
                "def_merge",
                f"{len(missing)} netlist instances missing from the merged "
                f"DEF (first: {sorted(missing)[:3]})")
            return
        for net_name, segments in merged.nets.items():
            if len(segments) != len(set(segments)):
                self._violate(
                    "def_merge",
                    f"net {net_name}: duplicated route segments in the "
                    "merged DEF")
                return

    def check_result(self, result: "PPAResult") -> None:
        """Final PPA numbers are finite and physically plausible."""
        if not self.enabled:
            return
        self._checked()
        checks = (
            # (name, value, lower bound, lower is exclusive, upper bound)
            ("achieved_frequency_ghz", result.achieved_frequency_ghz,
             0.0, True, MAX_SANE_FREQUENCY_GHZ),
            ("total_power_mw", result.power.total_mw,
             0.0, True, MAX_SANE_POWER_MW),
            ("core_area_um2", result.core_area_um2, 0.0, True, math.inf),
            ("total_wirelength_um", result.total_wirelength_um,
             0.0, False, math.inf),
            ("drv_count", float(result.drv_count), 0.0, False, math.inf),
        )
        for name, value, lo, lo_open, hi in checks:
            bad = (not math.isfinite(value) or value > hi
                   or value < lo or (lo_open and value == lo))
            if bad:
                self._violate(
                    "power",
                    f"{name} = {value!r} outside sane bounds "
                    f"({'(' if lo_open else '['}{lo:g}, {hi:g}])")
                return
        if not math.isfinite(result.timing.wns_ps):
            self._violate("sta", f"wns_ps = {result.timing.wns_ps!r} "
                                 "is not finite")


#: A guard that never checks anything (mode ``off``).
NULL_GUARD = FlowGuard(mode="off")
