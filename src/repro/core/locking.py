"""Cross-process advisory file locks for the content-addressed store.

The :class:`~repro.core.cache.FlowCache` and its
:class:`~repro.core.stages.StageStore` sidecar are shared by every
process on a machine — parallel sweep workers, concurrent ``repro``
invocations, the future job server.  This module provides the one
locking primitive they all use:

* :class:`FileLock` — an advisory per-key lock implemented as an
  ``O_CREAT | O_EXCL`` lockfile whose payload records the owner
  (pid, hostname, creation timestamp).  Creation is atomic on every
  POSIX filesystem, so exactly one process can hold a given lock;
* **stale-lock detection** — a lock whose recorded owner pid is no
  longer alive on this host (the holder crashed, was OOM-killed, or
  hit a ``die`` fault) is *stale*.  Unreadable or torn lockfiles
  become stale after :data:`UNREADABLE_GRACE_S`;
* **safe stealing** — :meth:`FileLock.steal` claims a stale lock by
  atomically renaming it aside first, so exactly one of any number of
  concurrent stealers wins; the losers go back to waiting;
* :class:`LockManager` — the per-store namespace of locks (a flat
  ``locks/`` directory keyed by content hash), plus the stale-lock
  sweep run at store open and the live-lock pinning the cache's quota
  eviction honors.

Waiting is bounded by ``$REPRO_LOCK_TIMEOUT`` (seconds, default
:data:`DEFAULT_LOCK_TIMEOUT`); callers degrade gracefully to
independent computation when a wait times out, so a wedged-but-alive
lock holder can slow other processes down but never deadlock them.
Lock events are counted on the active tracer (``lock.acquired``,
``lock.waits``, ``lock.steals``, ``lock.timeouts``); the single-flight
layer on top adds its own ``stage_cache.singleflight.*`` counters
(see :mod:`repro.core.stages` and docs/robustness.md).
"""

from __future__ import annotations

import errno
import itertools
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path

from . import telemetry

#: Environment variable bounding how long a process waits on another
#: holder before computing independently (seconds; ``0`` disables
#: waiting entirely — every contended lock degrades immediately).
LOCK_TIMEOUT_ENV = "REPRO_LOCK_TIMEOUT"

#: Default wait bound, seconds.  Generous enough for any real stage to
#: publish its artifact, small enough that a wedged holder cannot
#: stall a sweep forever.
DEFAULT_LOCK_TIMEOUT = 300.0

#: How long an unreadable/torn lockfile (no parseable owner) must sit
#: before it is considered stale — covers a writer that died between
#: creating and filling its lockfile.
UNREADABLE_GRACE_S = 30.0

#: Poll interval while waiting on a contended lock, seconds.
POLL_INTERVAL_S = 0.05

#: Distinguishes stolen-aside lockfiles; swept like stale tmp files.
STEAL_SUFFIX = ".stale"

_steal_counter = itertools.count()


def lock_timeout() -> float:
    """The effective wait bound from ``$REPRO_LOCK_TIMEOUT``."""
    raw = os.environ.get(LOCK_TIMEOUT_ENV, "").strip()
    if not raw:
        return DEFAULT_LOCK_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_LOCK_TIMEOUT
    return max(0.0, value)


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        return False
    return True


@dataclass(frozen=True)
class LockOwner:
    """The recorded holder of a lockfile."""

    pid: int
    host: str
    created: float

    @property
    def age_s(self) -> float:
        return max(0.0, time.time() - self.created)


class FileLock:
    """One advisory lock: a pid-stamped ``O_EXCL`` lockfile.

    Not reentrant and single-owner by design: ``acquire`` / ``release``
    pairs must nest within one thread.  All methods are safe to call
    concurrently from any number of processes.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._held = False

    # -- acquisition ---------------------------------------------------------
    def try_acquire(self) -> bool:
        """One non-blocking acquisition attempt."""
        payload = json.dumps({
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "created": time.time(),
        })
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False  # unwritable store: behave as unlocked
        try:
            os.write(fd, payload.encode())
        finally:
            os.close(fd)
        self._held = True
        telemetry.current_tracer().count("lock.acquired")
        return True

    def acquire(self, timeout: float | None = None) -> bool:
        """Block (bounded) until acquired; False when the wait timed out.

        Stale locks encountered while waiting are stolen.  ``timeout``
        defaults to :func:`lock_timeout`.
        """
        if self.try_acquire():
            return True
        if timeout is None:
            timeout = lock_timeout()
        deadline = time.monotonic() + timeout
        waited = False
        while True:
            if self.is_stale() and self.steal():
                return True
            if self.try_acquire():
                return True
            if time.monotonic() >= deadline:
                telemetry.current_tracer().count("lock.timeouts")
                return False
            if not waited:
                waited = True
                telemetry.current_tracer().count("lock.waits")
            time.sleep(POLL_INTERVAL_S)

    def release(self) -> None:
        """Drop a held lock (no-op when not held)."""
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass  # already stolen or swept: nothing left to release

    # -- inspection ----------------------------------------------------------
    @property
    def held(self) -> bool:
        return self._held

    def owner(self) -> LockOwner | None:
        """The recorded holder, or None when absent/unreadable."""
        try:
            payload = json.loads(self.path.read_text())
            return LockOwner(pid=int(payload["pid"]),
                             host=str(payload.get("host", "")),
                             created=float(payload.get("created", 0.0)))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def exists(self) -> bool:
        return self.path.exists()

    def is_stale(self) -> bool:
        """Whether the current lockfile's holder is provably gone.

        A foreign-host lock is never declared stale (we cannot probe
        its pid); an unreadable lockfile is stale only after
        :data:`UNREADABLE_GRACE_S`, so a writer between ``open`` and
        ``write`` is not robbed.
        """
        owner = self.owner()
        if owner is None:
            try:
                age = time.time() - self.path.stat().st_mtime
            except OSError:
                return False  # vanished: nothing to steal
            return age > UNREADABLE_GRACE_S
        if owner.host and owner.host != socket.gethostname():
            return False
        return not pid_alive(owner.pid)

    def steal(self) -> bool:
        """Claim a stale lock; True when *this* process now holds it.

        The lockfile is renamed aside first — an atomic op only one
        concurrent stealer can win — then its recorded owner is
        re-checked *on the aside file*: if a racing stealer already
        claimed-and-reacquired (so we renamed a fresh live lock, not
        the stale one), the file is restored and the steal fails.
        Only a verified-stale aside is discarded, followed by a fresh
        acquisition — which can still lose to a third process that
        slipped in; the caller then goes back to waiting.
        """
        aside = self.path.with_name(
            f"{self.path.name}{STEAL_SUFFIX}."
            f"{os.getpid()}.{next(_steal_counter)}")
        try:
            os.rename(self.path, aside)
        except OSError:
            return False  # someone else stole or released it first
        if not FileLock(aside).is_stale():
            # We raced another stealer and grabbed the winner's live
            # lock: put it back where its holder expects it.
            try:
                os.rename(aside, self.path)
            except OSError:
                pass
            return False
        try:
            aside.unlink()
        except OSError:
            pass
        telemetry.current_tracer().count("lock.steals")
        if self.try_acquire():
            return True
        return False

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "FileLock":
        if not self.acquire():
            raise TimeoutError(
                f"could not acquire {self.path} within {lock_timeout():g}s")
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class LockManager:
    """The flat per-store lock namespace (``<cache-dir>/locks``).

    Lock names are content-hash keys, so the lock for a store entry is
    found without any registry: ``locks/<key>.lock``.  The manager also
    owns the stale-lock sweep (store open, ``fsck --repair``) and
    reports the live-lock pin set the quota eviction honors.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    def lock(self, key: str) -> FileLock:
        return FileLock(self.directory / f"{key}.lock")

    def _lock_files(self):
        if not self.directory.is_dir():
            return
        yield from self.directory.glob("*.lock")

    def live_keys(self) -> set[str]:
        """Keys currently pinned by a live (non-stale) lock."""
        pinned: set[str] = set()
        for path in self._lock_files():
            if not FileLock(path).is_stale():
                pinned.add(path.name[:-len(".lock")])
        return pinned

    def survey(self) -> tuple[int, int]:
        """(live, stale) lock counts, for ``cache info`` and fsck."""
        live = stale = 0
        for path in self._lock_files():
            if FileLock(path).is_stale():
                stale += 1
            else:
                live += 1
        return live, stale

    def sweep_stale(self) -> int:
        """Remove stale locks (and stolen-aside leftovers); returns count."""
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in self.directory.glob(f"*{STEAL_SUFFIX}.*"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self._lock_files():
            if FileLock(path).is_stale():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass  # stolen/released while sweeping: fine
        return removed

    def clear(self) -> int:
        """Remove every lockfile (``cache clear``); returns count."""
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in list(self.directory.glob("*.lock")) + list(
                self.directory.glob(f"*{STEAL_SUFFIX}.*")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def fsync_file(fd: int) -> None:
    """Best-effort fsync of one descriptor (ignored where unsupported)."""
    try:
        os.fsync(fd)
    except OSError as exc:  # pragma: no cover - FS-dependent
        if exc.errno not in (errno.EINVAL, errno.ENOTSUP, errno.EBADF):
            raise


def fsync_dir(path: str | os.PathLike) -> None:
    """Best-effort fsync of a directory, making renames in it durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - FS-dependent
        return
    try:
        fsync_file(fd)
    finally:
        os.close(fd)
