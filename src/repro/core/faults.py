"""Deterministic, seeded fault injection for the flow's failure paths.

Recovery code that is never executed is broken code.  This harness lets
tests, CI smoke jobs and manual debugging make any named flow stage
misbehave on demand, deterministically, without touching the flow's
healthy-path results:

* ``raise`` — raise :class:`~repro.core.errors.InjectedFault`
  (transient: exercises the runner's retry/backoff path);
* ``fatal`` — raise :class:`~repro.core.errors.FatalError`
  (exercises immediate quarantine);
* ``hang``  — block inside the stage (exercises the per-run timeout);
* ``die``   — kill the worker process with ``os._exit`` (exercises
  ``BrokenProcessPool`` salvage);
* ``corrupt`` — silently damage the stage's output (exercises the
  flow guard's invariant checks).

Faults are specified via the ``REPRO_FAULTS`` environment variable (so
worker processes inherit them) or the CLI's ``--inject-faults``.  The
grammar is a comma-separated list of clauses::

    stage:mode[:option]...

    placement:raise              # every placement raises (all attempts)
    placement:raise:first        # only the first attempt raises
    routing:hang:duration=120    # routing blocks for 120 s
    def_merge:corrupt:rate=0.5   # half the runs get a damaged DEF
    sta:die:rate=0.3:seed=7      # 30 % of workers exit hard at STA

``stage`` is one of :data:`~repro.core.flow.FLOW_STAGES` or ``*``.
Whether a rate-gated clause fires is a pure hash of (clause seed,
stage, config identity, attempt), so a given sweep always injects the
same faults into the same runs — failures are reproducible, and
retries of rate-gated transient faults can legitimately succeed.

When any *flow* fault plan is active the sweep runner bypasses the
result cache entirely, so injected failures and corrupted outputs can
never poison real cached results.

Beyond the flow stages, the store's own failure paths are injectable
at the :data:`CACHE_POINTS` (see docs/robustness.md)::

    cache.put:corrupt        # torn write: a truncated entry lands on disk
    cache.put_blob:corrupt   # torn write on the pickle blob sidecar
    cache.evict:corrupt      # evict-race: quota treated as zero, every
                             # unpinned entry evicted under live readers
    lock.acquire:die         # lock-holder death: the process exits hard
                             # right after winning a single-flight lease

Cache-point clauses deliberately do **not** disable the cache (they
exist to exercise it); the rate draw uses the store key as the
identity, so they are just as deterministic as flow faults.  ``*``
never matches a cache point.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .errors import FatalError, InjectedFault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .config import FlowConfig

#: Environment variable holding the fault spec (inherited by workers).
FAULTS_ENV = "REPRO_FAULTS"

#: Recognized fault modes.
MODES = ("raise", "fatal", "hang", "corrupt", "die")

#: Injectable non-flow fault points inside the artifact store.  These
#: target the cache's own recovery paths, so (unlike flow stages) an
#: active cache-point clause does not bypass the cache.
CACHE_POINTS = ("cache.put", "cache.put_blob", "cache.evict",
                "lock.acquire")


def is_cache_point(stage: str) -> bool:
    """Whether a clause targets the store rather than a flow stage."""
    return stage.startswith(("cache.", "lock."))

#: Exit code of a worker killed by a ``die`` fault (mimics a hard
#: crash: no exception, no cleanup — the pool just loses the process).
DIE_EXIT_CODE = 86

#: Default block time of a ``hang`` fault, seconds.  Long enough that
#: any sane per-run timeout fires first.
DEFAULT_HANG_S = 3600.0

#: The attempt number of the run currently executing in this process
#: (1-based).  Set by the sweep runner before each (re)try.
_attempt = 1


def set_attempt(attempt: int) -> None:
    """Record the current run attempt (1-based) for ``first`` clauses."""
    global _attempt
    _attempt = max(1, int(attempt))


def current_attempt() -> int:
    return _attempt


@dataclass(frozen=True)
class FaultClause:
    """One parsed ``stage:mode[:option]...`` clause."""

    stage: str
    mode: str
    rate: float = 1.0
    first_attempt_only: bool = False
    duration_s: float = DEFAULT_HANG_S
    seed: int = 0

    def fires(self, stage: str, identity: str, attempt: int) -> bool:
        """Whether this clause injects into the given stage of one run."""
        if self.stage not in ("*", stage):
            return False
        if self.first_attempt_only and attempt > 1:
            return False
        if self.rate >= 1.0:
            return True
        return self._draw(stage, identity, attempt) < self.rate

    def _draw(self, stage: str, identity: str, attempt: int) -> float:
        """A deterministic uniform draw in [0, 1) for this (run, attempt)."""
        blob = f"{self.seed}|{self.mode}|{stage}|{identity}|{attempt}"
        digest = hashlib.sha256(blob.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64


def parse_clause(text: str) -> FaultClause:
    """Parse one ``stage:mode[:option]...`` clause."""
    parts = [p.strip() for p in text.strip().split(":")]
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise ValueError(f"fault clause needs stage:mode, got {text!r}")
    stage, mode = parts[0], parts[1]
    if mode not in MODES:
        raise ValueError(
            f"unknown fault mode {mode!r} (expected one of {MODES})")
    rate, first, duration, seed = 1.0, False, DEFAULT_HANG_S, 0
    for option in parts[2:]:
        if option == "first":
            first = True
            continue
        key, sep, value = option.partition("=")
        if not sep:
            raise ValueError(f"malformed fault option {option!r} in {text!r}")
        if key == "rate":
            rate = float(value)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate must be in [0, 1]: {text!r}")
        elif key == "duration":
            duration = float(value)
        elif key == "seed":
            seed = int(value)
        else:
            raise ValueError(f"unknown fault option {key!r} in {text!r}")
    return FaultClause(stage=stage, mode=mode, rate=rate,
                       first_attempt_only=first, duration_s=duration,
                       seed=seed)


@dataclass(frozen=True)
class FaultPlan:
    """Every active fault clause; empty plans are inert."""

    clauses: tuple[FaultClause, ...] = ()

    @classmethod
    def from_spec(cls, spec: str | None) -> "FaultPlan":
        """Parse a comma-separated clause list (empty/None -> inert plan)."""
        if not spec or not spec.strip():
            return cls()
        return cls(tuple(parse_clause(c)
                         for c in spec.split(",") if c.strip()))

    @property
    def active(self) -> bool:
        return bool(self.clauses)

    @property
    def flow_active(self) -> bool:
        """Whether any clause targets a *flow* stage (cache clauses
        never bypass the result cache or the stage store)."""
        return any(not is_cache_point(c.stage) for c in self.clauses)

    def clause_for(self, stage: str, config: "FlowConfig",
                   attempt: int | None = None) -> FaultClause | None:
        """The first clause that fires for this stage of this run."""
        if not self.clauses:
            return None
        attempt = attempt if attempt is not None else current_attempt()
        identity = _config_identity(config)
        for clause in self.clauses:
            if clause.fires(stage, identity, attempt):
                return clause
        return None


def _config_identity(config: "FlowConfig") -> str:
    """A stable per-run identity for deterministic fault draws."""
    return (f"{config.label}|u{config.utilization}"
            f"|f{config.target_frequency_ghz}|s{config.seed}")


def plan_from_env() -> FaultPlan:
    """The process-wide plan from ``$REPRO_FAULTS`` (inert if unset)."""
    return FaultPlan.from_spec(os.environ.get(FAULTS_ENV))


def faults_active() -> bool:
    """Whether any *flow* fault clause is active (cache-bypass check).

    Cache-point clauses (``cache.*`` / ``lock.*``) do not count: they
    exist to exercise the store, so the store must stay attached while
    they fire.
    """
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return False
    try:
        return FaultPlan.from_spec(spec).flow_active
    except ValueError:
        return True  # malformed spec: fail safe, bypass the cache


def cache_clause(point: str, identity: str = "") -> FaultClause | None:
    """The active clause targeting one store fault point, if any.

    Exact-name match only (``*`` never reaches into the store); the
    rate draw keys on the store key so injection is deterministic per
    entry, like flow faults are per run.
    """
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    try:
        plan = FaultPlan.from_spec(spec)
    except ValueError:
        return None
    for clause in plan.clauses:
        if clause.stage == point and clause.fires(point, identity,
                                                  current_attempt()):
            return clause
    return None


def fire(clause: FaultClause, stage: str) -> bool:
    """Execute a non-``corrupt`` clause inside its stage.

    Returns ``False`` only for ``corrupt`` clauses, which the flow
    applies itself (it owns the stage artifacts); everything else
    raises, blocks or kills the process right here.
    """
    if clause.mode == "raise":
        raise InjectedFault(
            f"injected transient fault at {stage}", stage,
            cause="InjectedFault")
    if clause.mode == "fatal":
        raise FatalError(
            f"injected fatal fault at {stage}", stage, cause="FatalError")
    if clause.mode == "hang":
        # A real hang, interruptible by the worker-side timeout alarm.
        deadline = time.monotonic() + clause.duration_s
        while time.monotonic() < deadline:
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
        raise InjectedFault(
            f"injected hang at {stage} outlived its {clause.duration_s:g}s "
            "duration without a timeout", stage, cause="InjectedFault")
    if clause.mode == "die":
        os._exit(DIE_EXIT_CODE)
    return False
