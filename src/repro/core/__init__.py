"""The FFET evaluation framework: flow, configs, sweeps and DoEs.

Every exported name resolves lazily via PEP 562 (module
``__getattr__``).  The package init stays import-free so that leaf
modules like :mod:`repro.core.errors` and :mod:`repro.core.telemetry`
can be imported from anywhere in the package — including ``pnr``,
``lefdef`` and ``extract``, which ``repro.core``'s own heavyweight
modules import in turn — without creating an import cycle.
"""

from importlib import import_module

#: Exported name -> defining submodule, resolved on first access.
_LAZY = {
    "FlowCache": ".cache",
    "cache_from_env": ".cache",
    "cache_key": ".cache",
    "code_fingerprint": ".cache",
    "netlist_fingerprint": ".cache",
    "FlowConfig": ".config",
    "DecompositionError": ".errors",
    "FatalError": ".errors",
    "FlowError": ".errors",
    "GuardViolation": ".errors",
    "InjectedFault": ".errors",
    "MergeError": ".errors",
    "RoutingError": ".errors",
    "RunTimeout": ".errors",
    "TransientError": ".errors",
    "FaultPlan": ".faults",
    "FileLock": ".locking",
    "LockManager": ".locking",
    "FLOW_GRAPH": ".flow",
    "FLOW_STAGES": ".flow",
    "FlowArtifacts": ".flow",
    "prepare_library": ".flow",
    "run_flow": ".flow",
    "stage_keys": ".flow",
    "Stage": ".stages",
    "StageGraph": ".stages",
    "StageLease": ".stages",
    "StageStore": ".stages",
    "stage_key": ".stages",
    "FlowGuard": ".guard",
    "result_to_dict": ".io",
    "results_to_csv": ".io",
    "results_to_json": ".io",
    "FailedRun": ".ppa",
    "PPAResult": ".ppa",
    "JsonlJournal": ".journal",
    "RetryPolicy": ".runner",
    "RunRecord": ".runner",
    "SweepCheckpoint": ".runner",
    "SweepRunner": ".runner",
    "SweepStats": ".runner",
    "resolve_jobs": ".runner",
    "run_once": ".runner",
    "script_runner": ".runner",
    "NULL_TRACER": ".telemetry",
    "NullTracer": ".telemetry",
    "Trace": ".telemetry",
    "Tracer": ".telemetry",
    "current_tracer": ".telemetry",
    "save_artifacts": ".artifacts",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
