"""The FFET evaluation framework: flow, configs, sweeps and DoEs."""

from .artifacts import save_artifacts
from .config import FlowConfig
from .flow import FlowArtifacts, prepare_library, run_flow
from .io import result_to_dict, results_to_csv, results_to_json
from .ppa import FailedRun, PPAResult

__all__ = [
    "FailedRun",
    "FlowArtifacts",
    "FlowConfig",
    "PPAResult",
    "prepare_library",
    "result_to_dict",
    "results_to_csv",
    "results_to_json",
    "run_flow",
    "save_artifacts",
]
