"""The FFET evaluation framework: flow, configs, sweeps and DoEs."""

from .artifacts import save_artifacts
from .cache import FlowCache, cache_key, code_fingerprint, netlist_fingerprint
from .config import FlowConfig
from .flow import FLOW_STAGES, FlowArtifacts, prepare_library, run_flow
from .io import result_to_dict, results_to_csv, results_to_json
from .ppa import FailedRun, PPAResult
from .runner import RunRecord, SweepRunner, SweepStats, resolve_jobs, run_once
from .telemetry import NULL_TRACER, NullTracer, Trace, Tracer, current_tracer

__all__ = [
    "FLOW_STAGES",
    "FailedRun",
    "FlowArtifacts",
    "FlowCache",
    "FlowConfig",
    "NULL_TRACER",
    "NullTracer",
    "PPAResult",
    "RunRecord",
    "SweepRunner",
    "SweepStats",
    "Trace",
    "Tracer",
    "cache_key",
    "code_fingerprint",
    "current_tracer",
    "netlist_fingerprint",
    "prepare_library",
    "resolve_jobs",
    "result_to_dict",
    "results_to_csv",
    "results_to_json",
    "run_flow",
    "run_once",
    "save_artifacts",
]
