"""PPA result records for one implementation run."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..power import PowerReport
from ..sta import TimingReport
from ..tech import MAX_DRV_COUNT


@dataclass(frozen=True)
class PPAResult:
    """Block-level power-performance-area outcome of one flow run."""

    label: str
    arch: str
    routing_label: str
    pin_density_label: str
    target_frequency_ghz: float
    target_utilization: float
    achieved_utilization: float
    core_area_um2: float
    cell_area_um2: float
    cell_count: int
    achieved_frequency_ghz: float
    timing: TimingReport
    power: PowerReport
    drv_count: int
    total_wirelength_um: float
    front_wirelength_um: float
    back_wirelength_um: float
    tap_cell_count: int = 0
    cts_buffers: int = 0
    placement_feasible: bool = True

    @property
    def valid(self) -> bool:
        """Paper validity rule: placeable and fewer than 10 DRVs."""
        return self.placement_feasible and self.drv_count < MAX_DRV_COUNT

    @property
    def total_power_mw(self) -> float:
        return self.power.total_mw

    @property
    def power_efficiency(self) -> float:
        return self.power.efficiency_ghz_per_mw

    def summary(self) -> str:
        """One-line human-readable result."""
        status = "ok" if self.valid else f"INVALID(drv={self.drv_count})"
        return (
            f"{self.label}: util={self.achieved_utilization:.0%} "
            f"area={self.core_area_um2:.1f}um2 "
            f"f={self.achieved_frequency_ghz:.2f}GHz "
            f"P={self.total_power_mw:.2f}mW "
            f"wl={self.total_wirelength_um:.0f}um [{status}]"
        )


@dataclass(frozen=True)
class FailedRun:
    """A run that produced no PPA result — infeasible or quarantined.

    The classic case is a utilization beyond the Power-Tap-Cell limit
    (an expected design-space boundary).  The fault-tolerance layer
    also quarantines runs here when a stage raised, timed out, tripped
    the flow guard, or kept killing its worker — with the failing
    stage, the cause (exception type name), and the attempt count
    attached so a sweep report can say exactly what happened.
    """

    label: str
    target_utilization: float
    reason: str
    #: Flow stage that failed (one of FLOW_STAGES; "" when unknown).
    stage: str = ""
    #: Exception type name ("PlacementError", "RunTimeout", ...).
    cause: str = ""
    #: Attempts consumed (> 1 when transient retries were exhausted).
    attempts: int = 1
    #: True for unexpected failures the runner quarantined; False for
    #: expected infeasibility (an unplaceable utilization point).
    quarantined: bool = False

    @property
    def valid(self) -> bool:
        return False

    def summary(self) -> str:
        """One-line structured rendering (stage, config, cause)."""
        kind = "QUARANTINED" if self.quarantined else "FAILED"
        parts = [f"{kind}: stage={self.stage or '?'}",
                 f"config={self.label!r}",
                 f"cause={self.cause or '?'}"]
        if self.attempts > 1:
            parts.append(f"attempts={self.attempts}")
        parts.append(f"error={self.reason}")
        return " ".join(parts)
