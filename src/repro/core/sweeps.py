"""Parameter sweeps behind the paper's figures.

Each function returns plain result rows; the benchmarks print them in
the same shape as the corresponding paper figure, and EXPERIMENTS.md
records paper-vs-measured values.

Every sweep accepts an optional :class:`~repro.core.runner.SweepRunner`
that fans the independent flow runs out over a process pool and serves
repeated points from the on-disk result cache.  Without one, a private
serial runner is used and behavior matches the historical loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..netlist import Netlist
from .config import FlowConfig
from .ppa import FailedRun, PPAResult
from .runner import SweepRunner, run_once

#: Utilization grid used by the paper's utilization sweeps (Fig. 8, 11).
DEFAULT_UTILIZATIONS = tuple(round(0.46 + 0.05 * i, 2) for i in range(9))


def try_run(netlist_factory: Callable[[], Netlist],
            config: FlowConfig) -> PPAResult | FailedRun:
    """Run one flow; a placement failure becomes a :class:`FailedRun`."""
    return run_once(netlist_factory, config)


def _runner(runner: SweepRunner | None) -> SweepRunner:
    return runner if runner is not None else SweepRunner()


def utilization_sweep(netlist_factory: Callable[[], Netlist],
                      config: FlowConfig,
                      utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
                      runner: SweepRunner | None = None,
                      ) -> list[PPAResult | FailedRun]:
    """Core area vs utilization (Fig. 8a/8c) and the Fig. 11 point sets."""
    return _runner(runner).run_many(
        netlist_factory,
        [config.with_(utilization=util) for util in utilizations],
    )


def max_valid_utilization(netlist_factory: Callable[[], Netlist],
                          config: FlowConfig,
                          utilizations: Sequence[float] | None = None,
                          runner: SweepRunner | None = None,
                          ) -> tuple[float, list[PPAResult | FailedRun]]:
    """Highest utilization that places cleanly and routes with <10 DRVs.

    This is the paper's "maximum utilization" metric (Figs. 8 and 12).
    Returns (max utilization, all runs); 0.0 when nothing is valid.
    """
    if utilizations is None:
        utilizations = [round(0.46 + 0.02 * i, 2) for i in range(23)]
    runs = _runner(runner).run_many(
        netlist_factory,
        [config.with_(utilization=util) for util in utilizations],
    )
    best = 0.0
    for util, run in zip(utilizations, runs):
        if run.valid:
            best = max(best, util)
    return best, runs


def frequency_sweep(netlist_factory: Callable[[], Netlist],
                    config: FlowConfig,
                    targets_ghz: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
                    runner: SweepRunner | None = None,
                    ) -> list[PPAResult | FailedRun]:
    """Power-frequency relationship (Fig. 9): sweep the synthesis target."""
    return _runner(runner).run_many(
        netlist_factory,
        [config.with_(target_frequency_ghz=f) for f in targets_ghz],
    )


def frequency_area_sweep(netlist_factory: Callable[[], Netlist],
                         config: FlowConfig,
                         utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
                         runner: SweepRunner | None = None,
                         ) -> list[PPAResult | FailedRun]:
    """Frequency-area relationship (Fig. 10): at a fixed 1.5 GHz target,
    smaller dies (higher utilization) trade frequency for area."""
    return utilization_sweep(netlist_factory, config, utilizations,
                             runner=runner)


@dataclass(frozen=True)
class LayerSweepPoint:
    """One point of the Fig. 12 / Fig. 13 layer-count sweeps."""

    front_layers: int
    back_layers: int
    max_utilization: float
    result: PPAResult | FailedRun | None

    @property
    def label(self) -> str:
        back = f"BM{self.back_layers}" if self.back_layers else ""
        return f"FM{self.front_layers}{back}"


def layer_split_sweep(netlist_factory: Callable[[], Netlist],
                      config: FlowConfig,
                      splits: Sequence[tuple[int, int]],
                      runner: SweepRunner | None = None,
                      ) -> list[LayerSweepPoint]:
    """One run per (front, back) routing-layer split (Table III space).

    Every split shares the flow prefix up to ``legalization`` — the
    layer counts first enter the stage key chain at ``routing`` — so
    with a cached runner the sweep places once and routes N times (see
    docs/architecture.md).
    """
    configs = [config.with_(front_layers=front, back_layers=back)
               for front, back in splits]
    runs = _runner(runner).run_many(netlist_factory, configs)
    points = []
    for (front, back), run in zip(splits, runs):
        util = run.achieved_utilization if isinstance(run, PPAResult) else 0.0
        points.append(LayerSweepPoint(front, back, util, run))
    return points


def layer_count_utilization_sweep(netlist_factory: Callable[[], Netlist],
                                  config: FlowConfig,
                                  layer_counts: Sequence[int] = tuple(range(2, 13)),
                                  utilizations: Sequence[float] | None = None,
                                  runner: SweepRunner | None = None,
                                  ) -> list[LayerSweepPoint]:
    """Fig. 12: max utilization vs symmetric front/back layer count."""
    runner = _runner(runner)
    points = []
    for n in layer_counts:
        cfg = config.with_(front_layers=n, back_layers=n)
        best, _runs = max_valid_utilization(netlist_factory, cfg,
                                            utilizations, runner=runner)
        points.append(LayerSweepPoint(n, n, best, None))
    return points


@dataclass(frozen=True)
class CtsSweepPoint:
    """One point of the single- vs dual-sided CTS comparison DoE."""

    utilization: float
    front_layers: int
    back_layers: int
    cts_mode: str
    result: PPAResult | FailedRun

    @property
    def label(self) -> str:
        back = f"BM{self.back_layers}" if self.back_layers else ""
        return (f"FM{self.front_layers}{back} u{self.utilization:.2f} "
                f"cts={self.cts_mode}")


def cts_mode_sweep(netlist_factory: Callable[[], Netlist],
                   config: FlowConfig,
                   utilizations: Sequence[float] = (0.5, 0.7),
                   splits: Sequence[tuple[int, int]] = ((12, 12), (6, 6)),
                   runner: SweepRunner | None = None,
                   back_fraction: float = 0.5,
                   ) -> list[CtsSweepPoint]:
    """Single- vs dual-sided CTS over the Fig. 12 utilization x
    layer-split DoE.

    All points go through one :meth:`~SweepRunner.run_many` call, so a
    cached runner shares each utilization's library..placement prefix
    across CTS modes and layer splits — CTS is the first stage whose
    key differs between the two modes.
    """
    grid = [(util, front, back, mode)
            for util in utilizations
            for front, back in splits
            for mode in ("single", "dual")]
    configs = [config.with_(utilization=util, front_layers=front,
                            back_layers=back, cts_mode=mode,
                            cts_back_fraction=back_fraction)
               for util, front, back, mode in grid]
    runs = _runner(runner).run_many(netlist_factory, configs)
    return [CtsSweepPoint(util, front, back, mode, run)
            for (util, front, back, mode), run in zip(grid, runs)]


def layer_count_efficiency_sweep(netlist_factory: Callable[[], Netlist],
                                 config: FlowConfig,
                                 layer_counts: Sequence[int] = tuple(range(3, 13)),
                                 runner: SweepRunner | None = None,
                                 ) -> list[LayerSweepPoint]:
    """Fig. 13: power efficiency vs symmetric layer count at fixed
    utilization and 1.5 GHz target."""
    configs = [config.with_(front_layers=n, back_layers=n)
               for n in layer_counts]
    runs = _runner(runner).run_many(netlist_factory, configs)
    points = []
    for n, run in zip(layer_counts, runs):
        util = run.achieved_utilization if isinstance(run, PPAResult) else 0.0
        points.append(LayerSweepPoint(n, n, util, run))
    return points
