"""Structured flow errors: the failure taxonomy of the fault-tolerance layer.

Every failure a flow run can produce is classified along one axis that
the sweep runner acts on — is re-running the same configuration likely
to succeed?

* :class:`TransientError` — environmental failures (a worker process
  died, the OS refused a resource, a run exceeded its wall-clock
  budget).  The runner retries these with exponential backoff before
  quarantining the run.
* :class:`FatalError` — deterministic failures (an unplaceable
  utilization, a routing target that cannot be reached, an invariant
  the flow guard caught).  Retrying would reproduce them bit for bit,
  so the runner quarantines immediately.

Both carry the *stage* that failed (one of
:data:`~repro.core.flow.FLOW_STAGES`), the *config label/digest* of the
run, and a stringified *cause*, so a quarantined
:class:`~repro.core.ppa.FailedRun` and the CLI's one-line failure
message can always say where and why without a traceback.

This module is intentionally dependency-free so every subsystem
(``pnr``, ``lefdef``, ``extract``) can import it at module scope
without creating an import cycle with ``repro.core``.
"""

from __future__ import annotations

__all__ = [
    "DecompositionError",
    "FatalError",
    "FlowError",
    "GuardViolation",
    "InjectedFault",
    "MergeError",
    "RoutingError",
    "RunTimeout",
    "TransientError",
    "classify",
    "is_transient",
    "wrap_stage_error",
]


class FlowError(RuntimeError):
    """A structured flow failure: what broke, where, and for which run.

    Subclasses set :attr:`transient` to steer the runner's retry
    policy.  All constructor arguments are positional-friendly strings
    so instances pickle cleanly across the process pool
    (:meth:`__reduce__`).
    """

    #: Whether re-running the same configuration may succeed.
    transient = False

    def __init__(self, message: str = "", stage: str = "",
                 config_label: str = "", config_digest: str = "",
                 cause: str = "") -> None:
        super().__init__(message)
        self.stage = stage
        self.config_label = config_label
        self.config_digest = config_digest
        self.cause = cause

    def __reduce__(self):
        return (type(self), (str(self), self.stage, self.config_label,
                             self.config_digest, self.cause))

    def one_line(self) -> str:
        """The CLI's structured single-line rendering (stage, config, cause)."""
        parts = [f"stage={self.stage or '?'}"]
        if self.config_label:
            parts.append(f"config={self.config_label!r}")
        if self.config_digest:
            parts.append(f"digest={self.config_digest[:12]}")
        parts.append(f"cause={self.cause or type(self).__name__}")
        parts.append(f"error={self}")
        return " ".join(parts)


class TransientError(FlowError):
    """An environmental failure; retrying the run may succeed."""

    transient = True


class FatalError(FlowError):
    """A deterministic failure; retrying would reproduce it exactly."""

    transient = False


class RunTimeout(TransientError):
    """A run exceeded its wall-clock budget (hung stage, overload)."""


class RoutingError(FatalError):
    """The maze router could not complete a net within its grid."""


class MergeError(FatalError, ValueError):
    """The front/back DEFs disagree and cannot be merged.

    Also a :class:`ValueError` for backward compatibility with callers
    that predate the structured hierarchy.
    """


class DecompositionError(FatalError, ValueError):
    """Algorithm 1 could not assign a net to a routable side."""


class GuardViolation(FatalError):
    """A post-stage invariant check failed (see ``repro.core.guard``)."""


class InjectedFault(TransientError):
    """A deliberate failure from the fault-injection harness.

    Transient by default so injected faults exercise the retry path;
    the ``fatal`` fault mode raises :class:`FatalError` directly.
    """


#: Exception types treated as transient even when raised outside the
#: structured hierarchy (worker death, resource pressure).
TRANSIENT_NATIVE = (OSError, MemoryError, ConnectionError)


def is_transient(exc: BaseException) -> bool:
    """Whether the runner should retry after this exception."""
    if isinstance(exc, FlowError):
        return exc.transient
    return isinstance(exc, TRANSIENT_NATIVE)


def classify(exc: BaseException) -> str:
    """``"transient"`` or ``"fatal"`` — the retry-policy bucket."""
    return "transient" if is_transient(exc) else "fatal"


def wrap_stage_error(exc: BaseException, stage: str,
                     config_label: str = "",
                     config_digest: str = "") -> FlowError:
    """Attach stage/config context to ``exc``, preserving transience.

    A :class:`FlowError` is annotated in place (missing fields only);
    anything else is wrapped in the matching subtype with the original
    exception recorded as the stringified cause.
    """
    if isinstance(exc, FlowError):
        if not exc.stage:
            exc.stage = stage
        if not exc.config_label:
            exc.config_label = config_label
        if not exc.config_digest:
            exc.config_digest = config_digest
        if not exc.cause:
            exc.cause = type(exc).__name__
        return exc
    kind = TransientError if is_transient(exc) else FatalError
    wrapped = kind(str(exc) or type(exc).__name__, stage, config_label,
                   config_digest, type(exc).__name__)
    wrapped.__cause__ = exc
    return wrapped
