"""Design-of-experiments runners for Fig. 11 and Table III.

Fig. 11: five backside input-pin density DoEs (FP0.96BP0.04 through
FP0.5BP0.5), all routed FM12BM12, swept over utilization at a 1.5 GHz
target; each cloud is summarized by a 50 % confidence ellipse.

Table III: with the total routing-layer count capped at 12, enumerate
the frontside/backside splits that stay routable for each pin-density
DoE and report frequency/power diffs against the single-sided
FFET FM12 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..analysis import Ellipse, confidence_ellipse, relative_diff
from ..netlist import Netlist
from .config import FlowConfig
from .ppa import FailedRun, PPAResult
from .runner import SweepRunner
from .sweeps import DEFAULT_UTILIZATIONS, utilization_sweep

#: The paper's five backside input-pin density DoEs (Fig. 11).
PIN_DENSITY_DOES = (0.04, 0.16, 0.30, 0.40, 0.50)


@dataclass(frozen=True)
class DoeCloud:
    """One DoE's power-frequency point cloud plus its ellipse."""

    backside_fraction: float
    label: str
    results: tuple[PPAResult, ...]
    ellipse: Ellipse | None

    @property
    def mean_frequency_ghz(self) -> float:
        return sum(r.achieved_frequency_ghz for r in self.results) / \
            len(self.results)

    @property
    def mean_power_mw(self) -> float:
        return sum(r.total_power_mw for r in self.results) / len(self.results)

    @property
    def merit(self) -> float:
        """Frequency per power: higher is better (ranks the ellipses)."""
        return self.mean_frequency_ghz / self.mean_power_mw


def pin_density_doe(netlist_factory: Callable[[], Netlist],
                    base: FlowConfig | None = None,
                    fractions: Sequence[float] = PIN_DENSITY_DOES,
                    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
                    runner: SweepRunner | None = None,
                    ) -> list[DoeCloud]:
    """Run the Fig. 11 experiment; one cloud per pin-density DoE."""
    base = base or FlowConfig(arch="ffet", front_layers=12, back_layers=12,
                              target_frequency_ghz=1.5)
    runner = runner if runner is not None else SweepRunner()
    clouds = []
    for fraction in fractions:
        config = base.with_(backside_pin_fraction=fraction)
        runs = utilization_sweep(netlist_factory, config, utilizations,
                                 runner=runner)
        ok = tuple(r for r in runs if isinstance(r, PPAResult) and r.valid)
        ellipse = None
        if len(ok) >= 3:
            ellipse = confidence_ellipse(
                [r.achieved_frequency_ghz for r in ok],
                [r.total_power_mw for r in ok],
                confidence=0.50,
            )
        clouds.append(DoeCloud(
            backside_fraction=fraction,
            label=config.label,
            results=ok,
            ellipse=ellipse,
        ))
    return clouds


@dataclass(frozen=True)
class CooptRow:
    """One Table III row."""

    backside_fraction: float
    front_layers: int
    back_layers: int
    frequency_diff: float
    power_diff: float
    valid: bool

    @property
    def pattern(self) -> str:
        return f"FM{self.front_layers}BM{self.back_layers}"


def layer_splits(total_layers: int = 12, min_back: int = 1,
                 min_front: int = 2) -> list[tuple[int, int]]:
    """All (front, back) splits with the given total (Table III space)."""
    return [
        (front, total_layers - front)
        for front in range(min_front, total_layers - min_back + 1)
    ]


def cooptimization_table(netlist_factory: Callable[[], Netlist],
                         base: FlowConfig | None = None,
                         fractions: Sequence[float] = PIN_DENSITY_DOES,
                         total_layers: int = 12,
                         utilization: float = 0.76,
                         keep_top: int = 3,
                         runner: SweepRunner | None = None) -> list[CooptRow]:
    """Run the Table III co-optimization.

    The baseline is the single-sided FFET FM12 at the same utilization
    and target; each DoE keeps its ``keep_top`` best valid splits by
    frequency gain (the paper lists 2-3 per DoE).
    """
    base = base or FlowConfig(arch="ffet", front_layers=12, back_layers=12,
                              target_frequency_ghz=1.5)
    runner = runner if runner is not None else SweepRunner()
    baseline_cfg = base.with_(front_layers=total_layers, back_layers=0,
                              backside_pin_fraction=0.0,
                              utilization=utilization)
    baseline = runner.run_one(netlist_factory, baseline_cfg)
    if not isinstance(baseline, PPAResult):
        raise RuntimeError(f"baseline failed: {baseline.reason}")

    splits = layer_splits(total_layers)
    rows: list[CooptRow] = []
    for fraction in fractions:
        configs = [
            base.with_(front_layers=front, back_layers=back,
                       backside_pin_fraction=fraction,
                       utilization=utilization)
            for front, back in splits
        ]
        runs = runner.run_many(netlist_factory, configs)
        candidates: list[CooptRow] = []
        for (front, back), run in zip(splits, runs):
            if not isinstance(run, PPAResult):
                continue
            candidates.append(CooptRow(
                backside_fraction=fraction,
                front_layers=front,
                back_layers=back,
                frequency_diff=relative_diff(run.achieved_frequency_ghz,
                                             baseline.achieved_frequency_ghz),
                power_diff=relative_diff(run.total_power_mw,
                                         baseline.total_power_mw),
                valid=run.valid,
            ))
        valid = [c for c in candidates if c.valid]
        valid.sort(key=lambda c: -c.frequency_diff)
        rows.extend(valid[:keep_top])
    return rows
