"""Artifact export: write a flow run's physical views to disk.

Mirrors the file set a commercial flow hands off: LEF + Liberty for the
library, one DEF per wafer side plus the merged DEF (Section III.C),
SPEF parasitics, gate-level Verilog, and human-readable reports (layout
summary, congestion heatmaps, critical path).
"""

from __future__ import annotations

import os

from ..analysis import congestion_map, layout_summary
from ..cells import write_liberty
from ..lefdef import write_def, write_lef
from ..extract import write_spef
from ..netlist import write_verilog
from ..sta import format_path, report_critical_path
from ..tech import Side
from .flow import FlowArtifacts
from .io import result_to_dict, results_to_json


def save_artifacts(artifacts: FlowArtifacts, directory: str) -> list[str]:
    """Write every view of a run into ``directory``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    written: list[str] = []

    def emit(filename: str, content: str) -> None:
        path = os.path.join(directory, filename)
        with open(path, "w") as handle:
            handle.write(content)
        written.append(path)

    design = artifacts.netlist.name
    emit(f"{design}.lib", write_liberty(artifacts.library))
    emit(f"{design}.lef", write_lef(artifacts.library))
    emit(f"{design}.v", write_verilog(artifacts.netlist))
    for side, def_design in artifacts.defs.items():
        emit(f"{design}_{side.value}.def", write_def(def_design))
    emit(f"{design}_merged.def", write_def(artifacts.merged_def))
    emit(f"{design}.spef", write_spef(artifacts.netlist, artifacts.extraction))
    emit(f"{design}_result.json", results_to_json([artifacts.result]))

    report_lines = [layout_summary(artifacts), ""]
    for side, routing in artifacts.routing_results.items():
        report_lines.append(f"congestion ({side.value}):")
        report_lines.append(congestion_map(routing))
        report_lines.append("")
    path = report_critical_path(
        artifacts.netlist, artifacts.library, artifacts.extraction,
        artifacts.result.timing.period_ps,
    )
    report_lines.append(format_path(path))
    emit(f"{design}_report.txt", "\n".join(report_lines))
    return written
