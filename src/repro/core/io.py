"""Serialization of experiment results to JSON/CSV rows."""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from .ppa import FailedRun, PPAResult

#: Flat columns exported for each run.
RESULT_FIELDS = (
    "label", "arch", "routing_label", "pin_density_label",
    "target_frequency_ghz", "target_utilization", "achieved_utilization",
    "core_area_um2", "cell_area_um2", "cell_count",
    "achieved_frequency_ghz", "total_power_mw", "power_efficiency",
    "drv_count", "valid", "total_wirelength_um", "front_wirelength_um",
    "back_wirelength_um", "tap_cell_count", "cts_buffers",
)


def result_to_dict(run: PPAResult | FailedRun) -> dict:
    """Flatten one run into plain JSON-serializable values."""
    if isinstance(run, FailedRun):
        return {
            "label": run.label,
            "target_utilization": run.target_utilization,
            "valid": False,
            "failure": run.reason,
            "stage": run.stage,
            "cause": run.cause,
            "attempts": run.attempts,
            "quarantined": run.quarantined,
        }
    out = {}
    for field in RESULT_FIELDS:
        value = getattr(run, field)
        out[field] = value
    out["wns_ps"] = run.timing.wns_ps
    out["clock_skew_ps"] = run.timing.clock_skew_ps
    out["switching_mw"] = run.power.switching_mw
    out["internal_mw"] = run.power.internal_mw
    out["leakage_mw"] = run.power.leakage_mw
    return out


def results_to_json(runs: Iterable[PPAResult | FailedRun],
                    indent: int = 2) -> str:
    return json.dumps([result_to_dict(r) for r in runs], indent=indent)


def results_to_csv(runs: Iterable[PPAResult | FailedRun]) -> str:
    rows = [result_to_dict(r) for r in runs]
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
