"""Crash-safe append-only JSONL journals with an identity header.

This is the durability primitive behind both the sweep checkpoint
(:class:`~repro.core.runner.SweepCheckpoint`) and the job server's
journal (:class:`repro.service.journal.JobJournal`): a JSONL file whose
first line binds it to one *identity* (a small JSON dict plus a format
version), followed by fsync'd event lines.  The guarantees:

* **durable once appended** — :meth:`JsonlJournal.append` returns only
  after the line is flushed and fsync'd, so a settled event survives a
  ``SIGKILL`` immediately after;
* **torn tails are harmless** — a process killed mid-write leaves at
  most one truncated trailing line, which :meth:`begin` detects and
  drops (together with anything after it);
* **identity-bound resume** — :meth:`begin` replays the intact events
  only when the header matches the expected kind, version and identity
  fields; anything else (a different sweep, an older format, a foreign
  file) starts the journal fresh rather than resuming the wrong work.

Callers that replay typed events can pass an ``accept`` callback to
:meth:`begin`; the first event it rejects truncates the replay there,
exactly as a torn line would.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable


class JsonlJournal:
    """One append-only JSONL event log bound to an identity header.

    ``kind`` names the header event (``"sweep"``, ``"serve"``, ...) and
    ``version`` is the caller's format version; both must match for
    :meth:`begin` to resume an existing file.
    """

    def __init__(self, path: str | os.PathLike, kind: str, version: int,
                 resume: bool = True) -> None:
        self.path = Path(path)
        self.kind = kind
        self.version = version
        self.resume = resume
        self._handle = None

    # -- lifecycle -----------------------------------------------------------
    def _header_matches(self, payload: dict, identity: dict) -> bool:
        if payload.get("ev") != self.kind \
                or payload.get("version") != self.version:
            return False
        return all(payload.get(k) == v for k, v in identity.items())

    def begin(self, identity: dict,
              accept: Callable[[dict], bool] | None = None) -> list[dict]:
        """Open for appending; returns the replayed intact events.

        When resuming a file whose header matches ``identity``, every
        intact event line after the header is parsed and returned (the
        header itself is not).  A torn trailing line, or the first
        event ``accept`` rejects, truncates the replay there.  On any
        header mismatch the file is started fresh and nothing is
        replayed.
        """
        events: list[dict] = []
        lines_kept = 0
        raw_lines: list[str] = []
        if self.resume and self.path.is_file():
            try:
                raw_lines = self.path.read_text().splitlines()
            except OSError:
                raw_lines = []
            header_ok = False
            for line in raw_lines:
                try:
                    payload = json.loads(line)
                except ValueError:
                    break  # truncated tail from a mid-write crash
                if not lines_kept:
                    header_ok = self._header_matches(payload, identity)
                    if not header_ok:
                        break
                else:
                    if accept is not None and not accept(payload):
                        break
                    events.append(payload)
                lines_kept += 1
            if not header_ok:
                events = []
                lines_kept = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if lines_kept:
            # Resuming: keep the intact prefix, drop any truncated tail.
            intact = "\n".join(raw_lines[:lines_kept])
            self._handle = open(self.path, "w")
            self._handle.write(intact + "\n")
        else:
            self._handle = open(self.path, "w")
            self._handle.write(json.dumps(
                {"ev": self.kind, **identity,
                 "version": self.version}) + "\n")
        self._flush()
        return events

    def append(self, event: dict) -> None:
        """Append one event line; durable once this returns."""
        if self._handle is None:
            return
        self._handle.write(json.dumps(event) + "\n")
        self._flush()

    def close(self) -> None:
        """Close the handle; the file remains resumable."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def open(self) -> bool:
        return self._handle is not None

    def _flush(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
