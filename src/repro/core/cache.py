"""Content-addressed on-disk cache for flow results.

Every flow run is a pure function of three inputs: the
:class:`~repro.core.config.FlowConfig`, the netlist the factory
produces, and the code that implements the flow.  The cache key is a
SHA-256 over all three, so a hit is only possible when re-running would
provably recompute the same :class:`~repro.core.ppa.PPAResult`:

* **config** — every dataclass field except the ones in
  :data:`NON_PPA_FIELDS` (annotations like ``tag`` that never reach the
  flow);
* **netlist fingerprint** — a structural hash of the instances, nets
  and port directions (:func:`netlist_fingerprint`);
* **version tag** — by default :func:`code_fingerprint`, a hash of every
  ``repro`` source file, so editing the flow invalidates the whole
  cache without any manual version bump.

Entries are JSON files under ``<cache-dir>/<key[:2]>/<key>.json`` and
round-trip :class:`PPAResult`/:class:`FailedRun` exactly (dataclass
equality, bit-for-bit floats).  The directory defaults to
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.  ``FlowCache.clear()`` and
``repro cache clear`` are the explicit invalidation paths; passing
``cache=None`` to the runner (CLI ``--no-cache``) bypasses it entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

from ..netlist import Netlist
from ..power import PowerReport
from ..sta import TimingReport
from . import kernels, telemetry
from .config import FlowConfig
from .ppa import FailedRun, PPAResult

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: FlowConfig fields that never influence the flow's outcome and are
#: therefore excluded from the cache key.
NON_PPA_FIELDS = frozenset({"tag"})

#: Bumped only on cache *format* changes (payload layout, key recipe).
#: 2: payload carries a content checksum; corrupt entries are detected,
#: counted (``cache.corrupt``) and deleted instead of silently missing.
#: 3: the key covers the active ``$REPRO_KERNEL`` mode, so python- and
#: numpy-kernel results can never cross-pollinate a warm store.
CACHE_FORMAT = 3

_code_fingerprint: str | None = None


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def config_cache_fields(config: FlowConfig) -> dict:
    """The PPA-relevant fields of a config, as JSON-stable values."""
    out = {}
    for f in dataclasses.fields(config):
        if f.name in NON_PPA_FIELDS:
            continue
        out[f.name] = getattr(config, f.name)
    return out


def netlist_fingerprint(netlist: Netlist) -> str:
    """Structural hash of a netlist (instances, connectivity, ports)."""
    payload = {
        "name": netlist.name,
        "instances": sorted(
            (name, inst.master, sorted(inst.connections.items()))
            for name, inst in netlist.instances.items()
        ),
        "nets": sorted(
            (net.name, net.is_primary_input, net.is_primary_output,
             net.is_clock, list(net.driver) if net.driver else None)
            for net in netlist.nets.values()
        ),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file — the default version tag.

    Any edit to the flow implementation changes this hash and thereby
    invalidates all existing cache entries, which is what makes the
    cache safe to leave on by default.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def cache_key(config: FlowConfig, netlist_fp: str,
              version: str | None = None) -> str:
    """Stable content hash of (config, netlist, kernel mode, code version)."""
    payload = {
        "format": CACHE_FORMAT,
        "config": config_cache_fields(config),
        "netlist": netlist_fp,
        "kernel": kernels.kernel_mode(),
        "version": version if version is not None else code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def payload_checksum(payload: dict) -> str:
    """Content checksum over the result portion of a cache payload.

    Covers exactly the fields :func:`result_from_payload` reads, so any
    torn write, truncation or hand-edit that could change the decoded
    result is caught; bookkeeping fields (key, label, created) are not
    covered and remain freely editable.
    """
    blob = json.dumps({"kind": payload["kind"], "data": payload["data"]},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def result_to_payload(result: PPAResult | FailedRun) -> dict:
    """Serialize a run result into a JSON-safe, round-trippable dict."""
    if isinstance(result, FailedRun):
        return {"kind": "failed", "data": dataclasses.asdict(result)}
    return {"kind": "ppa", "data": dataclasses.asdict(result)}


def result_from_payload(payload: dict) -> PPAResult | FailedRun:
    """Inverse of :func:`result_to_payload`."""
    data = dict(payload["data"])
    if payload["kind"] == "failed":
        return FailedRun(**data)
    data["timing"] = TimingReport(**data["timing"])
    data["power"] = PowerReport(**data["power"])
    return PPAResult(**data)


class FlowCache:
    """Content-addressed store of flow results on disk.

    Thread/process safe for concurrent writers via atomic rename;
    corrupt or unreadable entries behave as misses.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 version: str | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.version = version
        self.hits = 0
        self.misses = 0
        #: Entries found damaged (checksum mismatch, unparseable) and
        #: deleted; also counted as ``cache.corrupt`` on the trace.
        self.corrupt = 0

    def key_for(self, config: FlowConfig, netlist_fp: str) -> str:
        return cache_key(config, netlist_fp, version=self.version)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> PPAResult | FailedRun | None:
        path = self._path(key)
        tracer = telemetry.current_tracer()
        try:
            text = path.read_text()
        except OSError:  # absent entry: an ordinary miss
            self.misses += 1
            tracer.count("cache.misses")
            return None
        try:
            payload = json.loads(text)
            stored = payload.get("checksum")
            if stored is not None and stored != payload_checksum(payload):
                raise ValueError("cache entry checksum mismatch")
            result = result_from_payload(payload)
        except (ValueError, KeyError, TypeError):
            # The entry exists but is damaged (torn write, bit rot,
            # hand-editing): count it loudly and delete it, so it can
            # never be half-read and never misses twice.
            self.corrupt += 1
            tracer.count("cache.corrupt")
            self.invalidate(key)
            self.misses += 1
            tracer.count("cache.misses")
            return None
        self.hits += 1
        # A hit replaces an entire flow run: record it as a zero-cost
        # span so sweep traces still account for every configuration.
        tracer.count("cache.hits")
        tracer.zero_span("cache_hit")
        return result

    def put(self, key: str, result: PPAResult | FailedRun) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result_to_payload(result)
        payload["checksum"] = payload_checksum(payload)
        payload["key"] = key
        payload["label"] = result.label
        payload["created"] = time.time()
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)

    # -- pickle blob sidecar -------------------------------------------------
    # Larger-than-JSON payloads keyed by the same content-addressed
    # keys: the Monte-Carlo engine stores each nominal run's (result,
    # netlist, library, extraction) here so re-running ``repro mc`` with
    # different sample counts never repeats the expensive flow.

    def _blob_path(self, key: str, kind: str) -> Path:
        return self.directory / "blobs" / kind / key[:2] / f"{key}.pkl"

    def get_blob(self, key: str, kind: str):
        """Unpickle a stored blob; None on miss or damage (then deleted)."""
        import pickle
        path = self._blob_path(key, kind)
        tracer = telemetry.current_tracer()
        try:
            blob = path.read_bytes()
        except OSError:
            tracer.count("cache.blob_misses")
            return None
        try:
            obj = pickle.loads(blob)
        except Exception:
            self.corrupt += 1
            tracer.count("cache.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            tracer.count("cache.blob_misses")
            return None
        tracer.count("cache.blob_hits")
        return obj

    def put_blob(self, key: str, kind: str, obj) -> bool:
        """Pickle ``obj`` under ``key``; False when it cannot be stored."""
        import pickle
        try:
            blob = pickle.dumps(obj)
        except Exception:
            return False
        path = self._blob_path(key, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(blob)
        tmp.replace(path)
        return True

    def _blob_files(self):
        blobs = self.directory / "blobs"
        if not blobs.is_dir():
            return
        yield from blobs.glob("*/??/*.pkl")

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def _stale_tmp_files(self):
        """Leftover ``*.tmp.<pid>`` files from writers that died mid-put."""
        if not self.directory.is_dir():
            return
        yield from self.directory.glob("??/*.tmp.*")

    def clear(self) -> int:
        """Drop every entry (and stale tmp file); returns how many."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("??/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self._stale_tmp_files():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in list(self._blob_files()) + list(
                    (self.directory / "blobs").glob("*/??/*.tmp.*")
                    if (self.directory / "blobs").is_dir() else []):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))

    def info(self) -> dict:
        """Summary of the on-disk store for ``repro cache info``.

        Safe to call before the first ``put``: a missing directory is a
        clean empty summary, never an error.
        """
        entries = 0
        total_bytes = 0
        oldest = newest = None
        if self.directory.is_dir():
            for path in self.directory.glob("??/*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # racing writer/cleaner: skip, don't crash
                entries += 1
                total_bytes += stat.st_size
                mtime = stat.st_mtime
                oldest = mtime if oldest is None else min(oldest, mtime)
                newest = mtime if newest is None else max(newest, mtime)
        blob_entries = 0
        blob_bytes = 0
        for path in self._blob_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            blob_entries += 1
            blob_bytes += stat.st_size
        return {
            "directory": str(self.directory),
            "exists": self.directory.is_dir(),
            "entries": entries,
            "total_bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "stale_tmp_files": sum(1 for _ in self._stale_tmp_files()),
            "blob_entries": blob_entries,
            "blob_bytes": blob_bytes,
        }
