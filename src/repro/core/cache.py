"""Content-addressed on-disk cache for flow results.

Every flow run is a pure function of three inputs: the
:class:`~repro.core.config.FlowConfig`, the netlist the factory
produces, and the code that implements the flow.  The cache key is a
SHA-256 over all three, so a hit is only possible when re-running would
provably recompute the same :class:`~repro.core.ppa.PPAResult`:

* **config** — every dataclass field except the ones in
  :data:`NON_PPA_FIELDS` (annotations like ``tag`` that never reach the
  flow);
* **netlist fingerprint** — a structural hash of the instances, nets
  and port directions (:func:`netlist_fingerprint`);
* **version tag** — by default :func:`code_fingerprint`, a hash of every
  ``repro`` source file, so editing the flow invalidates the whole
  cache without any manual version bump.

Entries are JSON files under ``<cache-dir>/<key[:2]>/<key>.json`` and
round-trip :class:`PPAResult`/:class:`FailedRun` exactly (dataclass
equality, bit-for-bit floats).  The directory defaults to
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.  ``FlowCache.clear()`` and
``repro cache clear`` are the explicit invalidation paths; passing
``cache=None`` to the runner (CLI ``--no-cache``) bypasses it entirely.

The store is safe for concurrent multi-process use (docs/robustness.md
"Concurrency & integrity"):

* every write is **atomic and durable** — a collision-proof tmp file
  (pid + per-process counter) is fsynced, renamed over the final path,
  and the parent directory is fsynced, so a crash can never leave a
  torn entry where a reader looks;
* stale tmp files and stale locks from dead writers are **swept at
  store open** (first get/put), not just on ``clear`` — counted as
  ``cache.swept_tmp`` / ``cache.swept_locks``;
* growth is **bounded** by ``$REPRO_CACHE_MAX_BYTES`` (or the
  ``max_bytes`` argument / CLI ``--cache-max-bytes``): when the store
  exceeds the quota, least-recently-used entries are evicted (every
  hit bumps the entry's mtime, making mtimes an access journal) —
  except entries pinned by a live single-flight lock
  (:mod:`repro.core.locking`);
* :meth:`FlowCache.fsck` (CLI ``repro cache fsck``) audits the whole
  tree — checksums, truncated blobs, orphans, lock liveness — and can
  repair it in place.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import time
from pathlib import Path

from ..netlist import Netlist
from ..power import PowerReport
from ..sta import TimingReport
from . import faults as faults_mod
from . import kernels, locking, telemetry
from .config import FlowConfig
from .ppa import FailedRun, PPAResult

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the store's on-disk size in bytes
#: (unset or non-positive = unbounded).
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Environment variable disabling the cache wholesale (any non-empty
#: value) for callers that build their cache via :func:`cache_from_env`.
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: Age past which a tmp file whose writer pid cannot be parsed is
#: considered abandoned and swept.
TMP_GRACE_S = 3600.0

#: Collision-proof suffix source for same-pid concurrent writers.
_tmp_counter = itertools.count()

#: FlowConfig fields that never influence the flow's outcome and are
#: therefore excluded from the cache key.
NON_PPA_FIELDS = frozenset({"tag"})

#: Bumped only on cache *format* changes (payload layout, key recipe).
#: 2: payload carries a content checksum; corrupt entries are detected,
#: counted (``cache.corrupt``) and deleted instead of silently missing.
#: 3: the key covers the active ``$REPRO_KERNEL`` mode, so python- and
#: numpy-kernel results can never cross-pollinate a warm store.
CACHE_FORMAT = 3

_code_fingerprint: str | None = None


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def default_max_bytes() -> int | None:
    """The byte quota from ``$REPRO_CACHE_MAX_BYTES`` (None = unbounded)."""
    raw = os.environ.get(MAX_BYTES_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(float(raw))
    except ValueError:
        return None
    return value if value > 0 else None


def cache_from_env(directory: str | os.PathLike | None = None,
                   max_bytes: int | None = None) -> "FlowCache | None":
    """A :class:`FlowCache` honoring every cache environment knob.

    Returns ``None`` when ``$REPRO_NO_CACHE`` is set, otherwise a store
    at ``directory`` (default ``$REPRO_CACHE_DIR``) bounded by
    ``max_bytes`` (default ``$REPRO_CACHE_MAX_BYTES``).  This is the
    shared construction path for the batch scripts and the job server,
    so "shared cache" means the same directory, quota and hygiene
    everywhere.
    """
    if os.environ.get(NO_CACHE_ENV, "").strip():
        return None
    return FlowCache(directory, max_bytes=max_bytes)


def config_cache_fields(config: FlowConfig) -> dict:
    """The PPA-relevant fields of a config, as JSON-stable values."""
    out = {}
    for f in dataclasses.fields(config):
        if f.name in NON_PPA_FIELDS:
            continue
        out[f.name] = getattr(config, f.name)
    return out


def netlist_fingerprint(netlist: Netlist) -> str:
    """Structural hash of a netlist (instances, connectivity, ports)."""
    payload = {
        "name": netlist.name,
        "instances": sorted(
            (name, inst.master, sorted(inst.connections.items()))
            for name, inst in netlist.instances.items()
        ),
        "nets": sorted(
            (net.name, net.is_primary_input, net.is_primary_output,
             net.is_clock, list(net.driver) if net.driver else None)
            for net in netlist.nets.values()
        ),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file — the default version tag.

    Any edit to the flow implementation changes this hash and thereby
    invalidates all existing cache entries, which is what makes the
    cache safe to leave on by default.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def cache_key(config: FlowConfig, netlist_fp: str,
              version: str | None = None) -> str:
    """Stable content hash of (config, netlist, kernel mode, code version)."""
    payload = {
        "format": CACHE_FORMAT,
        "config": config_cache_fields(config),
        "netlist": netlist_fp,
        "kernel": kernels.kernel_mode(),
        "version": version if version is not None else code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def payload_checksum(payload: dict) -> str:
    """Content checksum over the result portion of a cache payload.

    Covers exactly the fields :func:`result_from_payload` reads, so any
    torn write, truncation or hand-edit that could change the decoded
    result is caught; bookkeeping fields (key, label, created) are not
    covered and remain freely editable.
    """
    blob = json.dumps({"kind": payload["kind"], "data": payload["data"]},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def result_to_payload(result: PPAResult | FailedRun) -> dict:
    """Serialize a run result into a JSON-safe, round-trippable dict."""
    if isinstance(result, FailedRun):
        return {"kind": "failed", "data": dataclasses.asdict(result)}
    return {"kind": "ppa", "data": dataclasses.asdict(result)}


def result_from_payload(payload: dict) -> PPAResult | FailedRun:
    """Inverse of :func:`result_to_payload`."""
    data = dict(payload["data"])
    if payload["kind"] == "failed":
        return FailedRun(**data)
    data["timing"] = TimingReport(**data["timing"])
    data["power"] = PowerReport(**data["power"])
    return PPAResult(**data)


class FlowCache:
    """Content-addressed store of flow results on disk.

    Thread/process safe for concurrent writers via fsynced atomic
    rename; corrupt or unreadable entries behave as misses.  See the
    module docstring for the concurrency, durability and quota story.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 version: str | None = None,
                 max_bytes: int | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.version = version
        #: Byte quota (None = unbounded); non-positive means unbounded.
        resolved = max_bytes if max_bytes is not None else default_max_bytes()
        self.max_bytes = resolved if resolved and resolved > 0 else None
        self.hits = 0
        self.misses = 0
        #: Entries found damaged (checksum mismatch, unparseable) and
        #: deleted; also counted as ``cache.corrupt`` on the trace.
        self.corrupt = 0
        #: Stale tmp files / stale locks swept at store open.
        self.swept_tmp = 0
        self.swept_locks = 0
        #: Entries evicted to stay under the byte quota.
        self.evictions = 0
        self._opened = False

    @property
    def locks(self) -> locking.LockManager:
        """The store's lock namespace (``<cache-dir>/locks``)."""
        return locking.LockManager(self.directory / "locks")

    def key_for(self, config: FlowConfig, netlist_fp: str) -> str:
        return cache_key(config, netlist_fp, version=self.version)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- durability and hygiene ---------------------------------------------
    def _atomic_write(self, path: Path, data: bytes, fault_point: str,
                      key: str) -> None:
        """Write ``data`` to ``path`` atomically and durably.

        The tmp name carries pid plus a per-process counter, so
        same-pid concurrent threads can never collide; the tmp file is
        fsynced before the rename and the parent directory after it,
        so a crash leaves either the old entry or the new one — never
        a torn file.  An active ``corrupt`` fault clause at
        ``fault_point`` simulates exactly that torn write instead.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        clause = faults_mod.cache_clause(fault_point, key)
        if clause is not None and clause.mode == "corrupt":
            # Injected torn write: half the payload lands at the final
            # path with no rename, as if the writer crashed mid-write
            # on a filesystem without atomic-rename discipline.
            path.write_bytes(data[:max(1, len(data) // 2)])
            return
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{next(_tmp_counter)}")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            locking.fsync_file(handle.fileno())
        tmp.replace(path)
        locking.fsync_dir(path.parent)

    @staticmethod
    def _tmp_is_stale(path: Path) -> bool:
        """Whether a tmp file's writer is provably gone.

        Tmp names end in ``.tmp.<pid>[.<counter>]``; a live pid means a
        writer may still be mid-put, so the file is left alone.  Names
        without a parseable pid fall back to an age check.
        """
        name = path.name
        tail = name.rsplit(".tmp.", 1)[-1] if ".tmp." in name else ""
        try:
            pid = int(tail.split(".")[0])
        except ValueError:
            pid = None
        if pid is not None:
            return not locking.pid_alive(pid)
        try:
            return time.time() - path.stat().st_mtime > TMP_GRACE_S
        except OSError:
            return False

    def _all_tmp_files(self):
        yield from self._stale_tmp_files()
        blobs = self.directory / "blobs"
        if blobs.is_dir():
            yield from blobs.glob("*/??/*.tmp.*")

    def _ensure_open(self) -> None:
        """First-use hygiene: sweep dead writers' tmp files and stale
        locks, so crash debris is cleaned the next time the store is
        *used*, not only when someone runs ``cache clear``."""
        if self._opened:
            return
        self._opened = True
        if not self.directory.is_dir():
            return
        tracer = telemetry.current_tracer()
        swept = 0
        for path in list(self._all_tmp_files()):
            if not self._tmp_is_stale(path):
                continue
            try:
                path.unlink()
                swept += 1
            except OSError:
                pass
        if swept:
            self.swept_tmp += swept
            tracer.count("cache.swept_tmp", swept)
        swept_locks = self.locks.sweep_stale()
        if swept_locks:
            self.swept_locks += swept_locks
            tracer.count("cache.swept_locks", swept_locks)

    @staticmethod
    def _touch(path: Path) -> None:
        """Bump an entry's mtime: the access journal LRU eviction reads."""
        try:
            os.utime(path)
        except OSError:
            pass  # racing eviction: the read below already succeeded

    def get(self, key: str) -> PPAResult | FailedRun | None:
        self._ensure_open()
        path = self._path(key)
        tracer = telemetry.current_tracer()
        try:
            text = path.read_text()
        except OSError:  # absent entry: an ordinary miss
            self.misses += 1
            tracer.count("cache.misses")
            return None
        try:
            payload = json.loads(text)
            stored = payload.get("checksum")
            if stored is not None and stored != payload_checksum(payload):
                raise ValueError("cache entry checksum mismatch")
            result = result_from_payload(payload)
        except (ValueError, KeyError, TypeError):
            # The entry exists but is damaged (torn write, bit rot,
            # hand-editing): count it loudly and delete it, so it can
            # never be half-read and never misses twice.
            self.corrupt += 1
            tracer.count("cache.corrupt")
            self.invalidate(key)
            self.misses += 1
            tracer.count("cache.misses")
            return None
        self.hits += 1
        self._touch(path)
        # A hit replaces an entire flow run: record it as a zero-cost
        # span so sweep traces still account for every configuration.
        tracer.count("cache.hits")
        tracer.zero_span("cache_hit")
        return result

    def put(self, key: str, result: PPAResult | FailedRun) -> None:
        self._ensure_open()
        payload = result_to_payload(result)
        payload["checksum"] = payload_checksum(payload)
        payload["key"] = key
        payload["label"] = result.label
        payload["created"] = time.time()
        self._atomic_write(self._path(key), json.dumps(payload).encode(),
                           "cache.put", key)
        self._enforce_quota()

    # -- pickle blob sidecar -------------------------------------------------
    # Larger-than-JSON payloads keyed by the same content-addressed
    # keys: the Monte-Carlo engine stores each nominal run's (result,
    # netlist, library, extraction) here so re-running ``repro mc`` with
    # different sample counts never repeats the expensive flow.

    def _blob_path(self, key: str, kind: str) -> Path:
        return self.directory / "blobs" / kind / key[:2] / f"{key}.pkl"

    def get_blob(self, key: str, kind: str):
        """Unpickle a stored blob; None on miss or damage (then deleted)."""
        import pickle
        self._ensure_open()
        path = self._blob_path(key, kind)
        tracer = telemetry.current_tracer()
        try:
            blob = path.read_bytes()
        except OSError:
            tracer.count("cache.blob_misses")
            return None
        try:
            obj = pickle.loads(blob)
        except Exception:
            self.corrupt += 1
            tracer.count("cache.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            tracer.count("cache.blob_misses")
            return None
        self._touch(path)
        tracer.count("cache.blob_hits")
        return obj

    def put_blob(self, key: str, kind: str, obj) -> bool:
        """Pickle ``obj`` under ``key``; False when it cannot be stored."""
        import pickle
        self._ensure_open()
        try:
            blob = pickle.dumps(obj)
        except Exception:
            return False
        self._atomic_write(self._blob_path(key, kind), blob,
                           "cache.put_blob", key)
        self._enforce_quota()
        return True

    def _blob_files(self):
        blobs = self.directory / "blobs"
        if not blobs.is_dir():
            return
        yield from blobs.glob("*/??/*.pkl")

    # -- bounded growth ------------------------------------------------------
    def _payload_files(self):
        """Every quota-accounted file: (path, key, size, mtime)."""
        if not self.directory.is_dir():
            return
        for path in itertools.chain(self.directory.glob("??/*.json"),
                                    self._blob_files()):
            try:
                stat = path.stat()
            except OSError:
                continue  # racing eviction/invalidation: skip
            yield path, path.stem, stat.st_size, stat.st_mtime

    def _enforce_quota(self) -> None:
        """Evict least-recently-used entries down to the byte quota.

        mtimes are the access journal (bumped on every hit), so sorting
        by mtime *is* LRU.  Keys pinned by a live single-flight lock are
        never evicted — a waiter may be about to load them.  An
        ``cache.evict:corrupt`` fault clause treats the quota as zero
        for one pass, stress-testing readers racing mass eviction.
        """
        limit = self.max_bytes
        clause = faults_mod.cache_clause("cache.evict")
        if clause is not None and clause.mode == "corrupt":
            limit = 0
        if limit is None:
            return
        census = list(self._payload_files())
        total = sum(size for _, _, size, _ in census)
        if total <= limit:
            return
        pinned = self.locks.live_keys()
        evicted = evicted_bytes = 0
        for path, key, size, _ in sorted(census, key=lambda row: row[3]):
            if total <= limit:
                break
            if key in pinned:
                continue
            try:
                path.unlink()
            except OSError:
                continue  # another process evicted it first
            total -= size
            evicted += 1
            evicted_bytes += size
        if evicted:
            self.evictions += evicted
            tracer = telemetry.current_tracer()
            tracer.count("cache.evicted", evicted)
            tracer.count("cache.evicted_bytes", evicted_bytes)

    # -- integrity audit -----------------------------------------------------
    def fsck(self, repair: bool = False) -> dict:
        """Audit the whole store; optionally repair it in place.

        Checks, in order: every JSON entry parses and matches both its
        checksum and its content-addressed filename (a mismatch is an
        ``orphan`` — the file can never be hit under its own name);
        every pickle blob unpickles (truncated payloads from torn
        writes fail here); stale tmp files; stale locks (including
        stolen-aside leftovers).  Does *not* sweep or mutate anything
        unless ``repair=True`` — a plain fsck is a safe read-only
        audit even while sweeps are running.
        """
        import pickle
        defects: list[dict] = []
        entries = blobs = 0

        def defect(kind: str, path: Path, detail: str) -> None:
            defects.append({"kind": kind, "path": str(path),
                            "detail": detail})

        if self.directory.is_dir():
            for path in self.directory.glob("??/*.json"):
                entries += 1
                try:
                    payload = json.loads(path.read_text())
                    stored = payload.get("checksum")
                    if stored is not None and \
                            stored != payload_checksum(payload):
                        raise ValueError("checksum mismatch")
                    result_from_payload(payload)
                except OSError:
                    continue  # deleted mid-scan: not a defect
                except (ValueError, KeyError, TypeError) as exc:
                    defect("corrupt_entry", path, str(exc))
                    continue
                recorded = payload.get("key")
                if recorded is not None and recorded != path.stem:
                    defect("orphan", path,
                           f"payload key {recorded[:12]}… does not match "
                           "filename")
        for path in self._blob_files():
            blobs += 1
            try:
                pickle.loads(path.read_bytes())
            except OSError:
                continue
            except Exception as exc:
                defect("corrupt_blob", path,
                       f"{type(exc).__name__}: truncated or damaged pickle")
        for path in self._all_tmp_files():
            if self._tmp_is_stale(path):
                defect("stale_tmp", path, "writer is no longer alive")
        locks = self.locks
        live = 0
        for path in locks._lock_files():
            lock = locking.FileLock(path)
            if lock.is_stale():
                owner = lock.owner()
                detail = (f"holder pid {owner.pid} is dead"
                          if owner else "unreadable and past grace")
                defect("stale_lock", path, detail)
            else:
                live += 1
        if locks.directory.is_dir():
            for path in locks.directory.glob(f"*{locking.STEAL_SUFFIX}.*"):
                defect("stale_lock", path, "stolen-aside leftover")

        repaired = 0
        if repair:
            for item in defects:
                try:
                    Path(item["path"]).unlink()
                    repaired += 1
                    item["repaired"] = True
                except OSError:
                    item["repaired"] = False
        return {
            "directory": str(self.directory),
            "entries": entries,
            "blobs": blobs,
            "live_locks": live,
            "defects": defects,
            "repaired": repaired,
            "clean": not defects,
        }

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def _stale_tmp_files(self):
        """Leftover ``*.tmp.<pid>`` files from writers that died mid-put."""
        if not self.directory.is_dir():
            return
        yield from self.directory.glob("??/*.tmp.*")

    def clear(self) -> int:
        """Drop every entry (and stale tmp file); returns how many."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("??/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self._stale_tmp_files():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in list(self._blob_files()) + list(
                    (self.directory / "blobs").glob("*/??/*.tmp.*")
                    if (self.directory / "blobs").is_dir() else []):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            removed += self.locks.clear()
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))

    def info(self) -> dict:
        """Summary of the on-disk store for ``repro cache info``.

        Safe to call before the first ``put``: a missing directory is a
        clean empty summary, never an error.
        """
        entries = 0
        total_bytes = 0
        oldest = newest = None
        if self.directory.is_dir():
            for path in self.directory.glob("??/*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # racing writer/cleaner: skip, don't crash
                entries += 1
                total_bytes += stat.st_size
                mtime = stat.st_mtime
                oldest = mtime if oldest is None else min(oldest, mtime)
                newest = mtime if newest is None else max(newest, mtime)
        blob_entries = 0
        blob_bytes = 0
        for path in self._blob_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            blob_entries += 1
            blob_bytes += stat.st_size
        live_locks, stale_locks = self.locks.survey()
        return {
            "directory": str(self.directory),
            "exists": self.directory.is_dir(),
            "entries": entries,
            "total_bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "stale_tmp_files": sum(1 for _ in self._stale_tmp_files()),
            "blob_entries": blob_entries,
            "blob_bytes": blob_bytes,
            "max_bytes": self.max_bytes,
            "live_locks": live_locks,
            "stale_locks": stale_locks,
        }
