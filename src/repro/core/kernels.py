"""Kernel-mode selection for the vectorized hot-stage kernels.

The four hottest inner kernels of the flow — analytic-placement
field/gradient updates, maze-routing wavefront expansion, Elmore delay
over RC trees and NLDM lookup-table interpolation — each ship two
implementations:

* ``python`` — the plain-Python reference path (dict/loop based, the
  original implementation, kept as the semantic ground truth);
* ``numpy`` — the vectorized production path (dense array ops, the
  default).

``$REPRO_KERNEL`` selects the mode for the whole process.  The two
modes are designed to be *operation-order compatible*: every floating-
point accumulation happens in the same order in both implementations,
so for the placement, extraction and STA kernels the results agree
bit-for-bit, and for routing both modes compute the identical
distance field and backtrack rule and therefore the identical routes
(see docs/performance.md for the full tolerance policy, and
``tests/test_kernel_equivalence.py`` for the property harness pinning
the agreement).

Because the kernels are equivalent by construction the mode would not
*need* to enter the cache key — but equivalence is an invariant under
test, not an axiom, so the mode is folded into both the flow-result
cache key and every stage key
(:func:`repro.core.cache.cache_key` / :func:`repro.core.stages.stage_key`):
python and numpy results can never cross-pollinate a warm store.
"""

from __future__ import annotations

import os

#: Environment variable selecting the kernel implementation.
KERNEL_ENV = "REPRO_KERNEL"

#: Recognized kernel modes.
KERNEL_MODES = ("python", "numpy")

#: Mode used when ``$REPRO_KERNEL`` is unset or empty.
DEFAULT_KERNEL = "numpy"


def kernel_mode() -> str:
    """The active kernel mode, from ``$REPRO_KERNEL``.

    Read from the environment on every call so tests (and the
    equivalence benchmark) can flip modes without re-importing; the
    callers all read it once per kernel invocation, never per element.
    """
    mode = os.environ.get(KERNEL_ENV, "").strip().lower() or DEFAULT_KERNEL
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"{KERNEL_ENV}={mode!r} is not a kernel mode "
            f"(choose from {', '.join(KERNEL_MODES)})")
    return mode


def use_numpy_kernels() -> bool:
    """Convenience predicate for the hot-path dispatch sites."""
    return kernel_mode() == "numpy"
