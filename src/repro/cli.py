"""Command-line interface for the FFET evaluation framework.

Usage (after ``pip install -e .``)::

    python -m repro characterize --arch ffet --liberty ffet.lib
    python -m repro run --arch ffet --utilization 0.76 --backside 0.5
    python -m repro sweep utilization --arch cfet --points 0.5 0.6 0.7
    python -m repro sweep frequency --targets 0.5 1.5 3.0 --jobs 4
    python -m repro doe pin-density --fractions 0.04 0.3 0.5
    python -m repro compare
    python -m repro mc --samples 256 --overlay-sigma 2 --jobs 4
    python -m repro cache info
    python -m repro run --trace traces/ && python -m repro trace report traces/

Every experiment subcommand accepts ``--xlen/--nregs`` to size the
RISC-V benchmark core and ``--json``/``--csv`` to save results.
Independent flow runs fan out over ``--jobs`` worker processes
(``$REPRO_JOBS`` sets the default) and completed points are served from
the content-addressed result cache unless ``--no-cache`` is given; see
docs/performance.md.  ``--trace DIR`` records per-stage telemetry for
every run and ``repro trace report DIR`` prints the stage breakdown;
see docs/observability.md.

Failure handling (docs/robustness.md): failed runs print one
structured line (stage, config, cause) and quarantined failures make
the command exit nonzero unless ``--keep-going``; ``--timeout`` /
``--retries`` tune the retry policy, ``--checkpoint FILE`` makes an
interrupted sweep resumable, ``--guard`` selects the flow-guard mode
and ``--inject-faults`` injects deterministic faults for testing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import build_library, make_cfet_node, make_ffet_node
from .cells import format_kpi_table, library_kpi_diff, write_liberty
from .core import (FLOW_STAGES, FlowCache, FlowConfig, PPAResult,
                   RetryPolicy, SweepRunner)
from .core import faults as faults_mod
from .core import guard as guard_mod
from .core.doe import cooptimization_table, pin_density_doe
from .core.errors import FlowError
from .core.io import results_to_csv, results_to_json
from .core.sweeps import (cts_mode_sweep, frequency_sweep,
                          layer_split_sweep, utilization_sweep)
from .synth import PORTFOLIO, RiscvConfig, generate_riscv_core


def _add_core_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--design",
                        choices=("riscv",) + tuple(sorted(PORTFOLIO)),
                        default="riscv",
                        help="benchmark design; 'riscv' is the plain core "
                             "sized by --xlen/--nregs, the portfolio names "
                             "(rv16_sram, rv16_cache, rv16_tile, ...) run "
                             "with their own defaults")
    parser.add_argument("--xlen", type=int, default=16,
                        help="RISC-V datapath width (paper scale: 32)")
    parser.add_argument("--nregs", type=int, default=16,
                        help="register count (paper scale: 32)")


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=("ffet", "cfet"), default="ffet")
    parser.add_argument("--front-layers", type=int, default=12)
    parser.add_argument("--back-layers", type=int, default=None,
                        help="default: 12 for ffet, 0 for cfet")
    parser.add_argument("--backside", type=float, default=0.5,
                        help="backside input-pin fraction (ffet only)")
    parser.add_argument("--utilization", type=float, default=0.70)
    parser.add_argument("--frequency", type=float, default=1.5,
                        help="synthesis target, GHz")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cts-mode", choices=("single", "dual"),
                        default="single",
                        help="clock tree: frontside-only or partitioned "
                             "across both metal stacks (ffet only)")
    parser.add_argument("--cts-back-fraction", type=float, default=0.5,
                        help="dual CTS: target share of clock wirelength "
                             "on backside metal")


def _add_output_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", metavar="FILE", help="write results JSON")
    parser.add_argument("--csv", metavar="FILE", help="write results CSV")


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="parallel flow workers (default: $REPRO_JOBS "
                             "or 1; 0 = one per core)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every run, bypassing the result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="re-run every point instead of serving stored "
                             "results, but keep the per-stage artifact store "
                             "warm (replays unchanged flow prefixes)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="byte quota for the cache directory; exceeding "
                             "it evicts least-recently-used entries "
                             "(default: $REPRO_CACHE_MAX_BYTES or unbounded)")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="write one per-stage telemetry trace (JSONL) "
                             "per run into DIR; inspect with "
                             "'repro trace report DIR'")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-run wall-clock budget; a run past it is "
                             "retried, then quarantined (default: "
                             "$REPRO_TIMEOUT or unlimited)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="max attempts per run for transient failures "
                             "(default: $REPRO_RETRIES or 3)")
    parser.add_argument("--checkpoint", metavar="FILE", default=None,
                        help="crash-safe sweep checkpoint (JSONL); rerunning "
                             "with the same file resumes an interrupted "
                             "sweep")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore an existing checkpoint file and "
                             "recompute every run")
    parser.add_argument("--keep-going", action="store_true",
                        help="exit 0 even when some runs were quarantined "
                             "(the sweep always completes either way)")
    parser.add_argument("--guard", choices=guard_mod.MODES, default=None,
                        help="flow guard mode for post-stage invariant "
                             "checks (default: $REPRO_GUARD or strict)")
    parser.add_argument("--inject-faults", metavar="SPEC", default=None,
                        help="deterministic fault injection, e.g. "
                             "'placement:raise:first,sta:die:rate=0.3'; "
                             "see docs/robustness.md (disables the cache)")


def _runner_from(args) -> SweepRunner:
    # --guard / --inject-faults travel via the environment so pool
    # worker processes see the exact same plan as the parent.
    if getattr(args, "guard", None):
        os.environ[guard_mod.GUARD_ENV] = args.guard
    if getattr(args, "inject_faults", None):
        faults_mod.FaultPlan.from_spec(args.inject_faults)  # fail fast
        os.environ[faults_mod.FAULTS_ENV] = args.inject_faults
    retry = RetryPolicy.from_env()
    if getattr(args, "timeout", None) or getattr(args, "retries", None):
        import dataclasses
        patch = {}
        if getattr(args, "timeout", None):
            patch["timeout_s"] = args.timeout
        if getattr(args, "retries", None):
            patch["max_attempts"] = max(1, args.retries)
        retry = dataclasses.replace(retry, **patch)
    cache = None
    if not getattr(args, "no_cache", False):
        cache = FlowCache(getattr(args, "cache_dir", None),
                          max_bytes=getattr(args, "cache_max_bytes", None))
    return SweepRunner(jobs=getattr(args, "jobs", None), cache=cache,
                       trace_dir=getattr(args, "trace", None),
                       retry=retry,
                       checkpoint=getattr(args, "checkpoint", None),
                       resume=not getattr(args, "no_resume", False),
                       refresh=getattr(args, "refresh", False))


def _exit_code(args, runner: SweepRunner) -> int:
    """Sweeps exit nonzero when runs were quarantined, unless
    ``--keep-going`` says partial results are an acceptable outcome."""
    if runner.stats.quarantined and not getattr(args, "keep_going", False):
        return 1
    return 0


def _report_traces(args, runner: SweepRunner) -> None:
    if getattr(args, "trace", None):
        if runner.stats.stage_time_s:
            print(runner.stats.stage_summary())
        print(f"traces written to {runner.trace_dir}")


def _config_from(args) -> FlowConfig:
    back = args.back_layers
    if back is None:
        back = 12 if args.arch == "ffet" else 0
    backside = args.backside if (args.arch == "ffet" and back) else 0.0
    return FlowConfig(
        arch=args.arch,
        front_layers=args.front_layers,
        back_layers=back,
        backside_pin_fraction=backside,
        utilization=args.utilization,
        target_frequency_ghz=args.frequency,
        seed=args.seed,
        cts_mode=getattr(args, "cts_mode", "single"),
        cts_back_fraction=getattr(args, "cts_back_fraction", 0.5),
    )


def _parse_split(text: str) -> tuple[int, int]:
    """Parse one ``FRONT:BACK`` routing-layer split, e.g. ``8:4``."""
    front, sep, back = text.partition(":")
    try:
        if not sep:
            raise ValueError(text)
        return int(front), int(back)
    except ValueError:
        raise ValueError(
            f"invalid layer split {text!r} (expected FRONT:BACK, e.g. 8:4)")


class RiscvFactory:
    """Picklable netlist factory (closures can't cross the process pool)."""

    def __init__(self, xlen: int, nregs: int) -> None:
        self.xlen = xlen
        self.nregs = nregs

    def __call__(self):
        return generate_riscv_core(RiscvConfig(
            xlen=self.xlen, nregs=self.nregs, name=f"rv{self.xlen}"))


class PortfolioFactory:
    """Picklable factory resolving a portfolio design name at call time."""

    def __init__(self, design: str) -> None:
        if design not in PORTFOLIO:
            raise ValueError(f"unknown design {design!r} "
                             f"(one of {sorted(PORTFOLIO)})")
        self.design = design

    def __call__(self):
        return PORTFOLIO[self.design]()


def _factory_from(args):
    design = getattr(args, "design", "riscv")
    if design == "riscv":
        return RiscvFactory(args.xlen, args.nregs)
    return PortfolioFactory(design)


def _emit(args, runs) -> None:
    if getattr(args, "json", None):
        with open(args.json, "w") as handle:
            handle.write(results_to_json(runs))
        print(f"wrote {args.json}")
    if getattr(args, "csv", None):
        with open(args.csv, "w") as handle:
            handle.write(results_to_csv(runs))
        print(f"wrote {args.csv}")


def cmd_characterize(args) -> int:
    ffet = build_library(make_ffet_node())
    cfet = build_library(make_cfet_node())
    print(format_kpi_table(library_kpi_diff(ffet, cfet)))
    if args.liberty:
        library = ffet if args.arch == "ffet" else cfet
        with open(args.liberty, "w") as handle:
            handle.write(write_liberty(library))
        print(f"wrote {args.liberty}")
    return 0


def cmd_run(args) -> int:
    if getattr(args, "stop_after", None):
        return _run_partial(args)
    runner = _runner_from(args)
    run = runner.run_one(_factory_from(args), _config_from(args))
    print(run.summary())
    _report_traces(args, runner)
    _emit(args, [run])
    if run.valid:
        return 0
    return 0 if getattr(args, "keep_going", False) else 1


def _run_partial(args) -> int:
    """``repro run --stop-after STAGE``: a partial stage-graph walk."""
    from .core import StageStore, Tracer
    from .core.flow import run_flow
    config = _config_from(args)
    cache = None if args.no_cache else FlowCache(
        args.cache_dir, max_bytes=getattr(args, "cache_max_bytes", None))
    store = StageStore(cache) if cache is not None else None
    tracer = Tracer(label=config.label) if args.trace else None
    artifacts = run_flow(_factory_from(args), config,
                         return_artifacts=True, tracer=tracer,
                         store=store, stop_after=args.stop_after)
    for name, how in artifacts.stage_status.items():
        print(f"{name:<14} {'replayed from stage store' if how == 'cached' else 'ran'}")
    if artifacts.result is not None:
        print(artifacts.result.summary())
    if args.trace:
        path = artifacts.trace.write(os.path.join(args.trace, "run-0000.jsonl"))
        print(f"trace written to {path}")
    return 0


def cmd_stages(args) -> int:
    """``repro stages``: dump the flow's stage graph."""
    from .core.flow import FLOW_GRAPH
    rows = [{
        "name": stage.name,
        "upstream": list(stage.upstream),
        "config_fields": sorted(stage.config_fields),
        "transitive_fields": sorted(FLOW_GRAPH.transitive_fields(stage.name)),
        "uses_netlist": stage.uses_netlist,
    } for stage in FLOW_GRAPH]
    if getattr(args, "json", False):
        print(json.dumps(rows, indent=2))
        return 0
    print(f"{'stage':<14} {'upstream':<14} config fields (own)")
    for row in rows:
        upstream = ", ".join(row["upstream"]) or "-"
        own = ", ".join(row["config_fields"]) or "-"
        if row["uses_netlist"]:
            own = (own + " + netlist") if own != "-" else "netlist"
        print(f"{row['name']:<14} {upstream:<14} {own}")
    print("\nA stage's key covers its own fields plus every upstream "
          "stage's key (transitive);\nsee docs/architecture.md for the "
          "invalidation rules.")
    return 0


def _print_cts_comparison(points) -> None:
    """Pair up single/dual CTS points and print the deltas."""
    by_key = {}
    for p in points:
        by_key.setdefault((p.utilization, p.front_layers, p.back_layers),
                          {})[p.cts_mode] = p.result
    print(f"{'point':<16} {'mode':<7} {'fmax GHz':>9} {'skew ps':>8} "
          f"{'clk bufs':>8} {'power mW':>9} {'back clk':>9}")
    for (util, front, back), modes in by_key.items():
        label = f"FM{front}BM{back} u{util:.2f}"
        for mode in ("single", "dual"):
            r = modes.get(mode)
            if r is None:
                continue
            if not r.valid:
                print(f"{label:<16} {mode:<7} {'failed':>9}")
                continue
            print(f"{label:<16} {mode:<7} "
                  f"{r.achieved_frequency_ghz:>9.3f} "
                  f"{r.timing.clock_skew_ps:>8.2f} "
                  f"{r.cts_buffers:>8d} "
                  f"{r.power.total_mw:>9.3f} "
                  f"{'yes' if mode == 'dual' else 'no':>9}")


def cmd_sweep(args) -> int:
    factory = _factory_from(args)
    config = _config_from(args)
    runner = _runner_from(args)
    if args.axis == "utilization":
        points = args.points or [0.5, 0.6, 0.7, 0.76, 0.8, 0.86]
        runs = utilization_sweep(factory, config, points, runner=runner)
    elif args.axis == "layers":
        splits = [_parse_split(s) for s in
                  (args.splits or ["9:3", "8:4", "7:5", "6:6"])]
        sweep_points = layer_split_sweep(factory, config, splits,
                                         runner=runner)
        runs = [p.result for p in sweep_points]
    elif args.axis == "cts":
        utils = args.points or [0.5, 0.7]
        splits = [_parse_split(s) for s in (args.splits or ["12:12", "6:6"])]
        points = cts_mode_sweep(factory, config, utils, splits,
                                runner=runner,
                                back_fraction=args.cts_back_fraction)
        _print_cts_comparison(points)
        runs = [p.result for p in points]
    else:
        targets = args.targets or [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
        runs = frequency_sweep(factory, config, targets, runner=runner)
    for run in runs:
        print(run.summary())
    print(runner.stats.summary())
    _report_traces(args, runner)
    _emit(args, runs)
    return _exit_code(args, runner)


def cmd_doe(args) -> int:
    factory = _factory_from(args)
    runner = _runner_from(args)
    base = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                      target_frequency_ghz=args.frequency, seed=args.seed)
    if args.kind == "pin-density":
        clouds = pin_density_doe(factory, base, fractions=args.fractions,
                                 utilizations=args.points or
                                 (0.52, 0.64, 0.76),
                                 runner=runner)
        for cloud in sorted(clouds, key=lambda c: -c.merit):
            print(f"{cloud.label}: mean f={cloud.mean_frequency_ghz:.3f} GHz"
                  f" mean P={cloud.mean_power_mw:.3f} mW"
                  f" merit={cloud.merit:.3f}")
        _emit(args, [r for c in clouds for r in c.results])
    else:
        rows = cooptimization_table(factory, base,
                                    fractions=args.fractions,
                                    utilization=args.utilization,
                                    runner=runner)
        for row in rows:
            print(f"FP{1 - row.backside_fraction:g}"
                  f"BP{row.backside_fraction:g} {row.pattern}: "
                  f"freq {row.frequency_diff:+.1%} "
                  f"power {row.power_diff:+.1%}")
    print(runner.stats.summary())
    _report_traces(args, runner)
    return _exit_code(args, runner)


def cmd_compare(args) -> int:
    factory = _factory_from(args)
    runner = _runner_from(args)
    configs = {
        "CFET": FlowConfig(arch="cfet", back_layers=0,
                           backside_pin_fraction=0.0,
                           utilization=args.utilization,
                           target_frequency_ghz=args.frequency),
        "FFET FM12": FlowConfig(arch="ffet", back_layers=0,
                                backside_pin_fraction=0.0,
                                utilization=args.utilization,
                                target_frequency_ghz=args.frequency),
        "FFET dual": FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                                utilization=args.utilization,
                                target_frequency_ghz=args.frequency),
    }
    results = runner.run_many(factory, list(configs.values()))
    runs = dict(zip(configs, results))
    for name, run in runs.items():
        print(run.summary() if isinstance(run, PPAResult)
              else f"{name}: {run.summary()}")
    cfet, ffet = runs["CFET"], runs["FFET FM12"]
    if isinstance(cfet, PPAResult) and isinstance(ffet, PPAResult):
        print(f"\nFFET FM12 vs CFET: area "
              f"{ffet.core_area_um2 / cfet.core_area_um2 - 1:+.1%}, "
              f"frequency {ffet.achieved_frequency_ghz / cfet.achieved_frequency_ghz - 1:+.1%}, "
              f"power {ffet.total_power_mw / cfet.total_power_mw - 1:+.1%}")
    print(runner.stats.summary())
    _report_traces(args, runner)
    _emit(args, list(runs.values()))
    return _exit_code(args, runner)


def cmd_mc(args) -> int:
    from .core import Tracer
    from .variation import (VariationModel, format_signoff, run_monte_carlo,
                            signoff)
    factory = _factory_from(args)
    config = _config_from(args)
    cache = None if args.no_cache else FlowCache(
        args.cache_dir, max_bytes=getattr(args, "cache_max_bytes", None))
    model = VariationModel.for_arch(config.arch,
                                    overlay_sigma_nm=args.overlay_sigma,
                                    cd_sigma=args.cd_sigma,
                                    rc_sigma=args.rc_sigma)
    tracer = Tracer(label=f"mc {config.label}") if args.trace else None
    mc = run_monte_carlo(factory, config, model=model, samples=args.samples,
                         seed=args.seed, jobs=args.jobs, cache=cache,
                         tracer=tracer)
    report = signoff(mc)
    print(format_signoff(report))
    if mc.nominal_cached:
        print("nominal flow served from the cache")
    for failure in mc.failed:
        print(f"QUARANTINED: sample={failure.index} "
              f"cause={failure.cause or '?'} error={failure.reason}")
    if tracer is not None:
        trace = tracer.finish()
        path = trace.write(os.path.join(args.trace, "mc-0000.jsonl"))
        print(f"trace written to {path}")
    if args.json:
        payload = report.to_dict()
        # Per-sample rows make the output a full determinism witness:
        # two runs agree on this file iff they agree on every sample.
        payload["sample_rows"] = [
            {"index": s.index, "seed": s.seed,
             "overlay_shift_nm": s.overlay_shift_nm,
             "cell_derate": s.cell_derate,
             "frequency_ghz": s.achieved_frequency_ghz,
             "wns_ps": s.wns_ps, "power_mw": s.total_power_mw}
            for s in mc.samples
        ]
        payload["failed_rows"] = [
            {"index": f.index, "seed": f.seed, "cause": f.cause}
            for f in mc.failed
        ]
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if mc.failed and not getattr(args, "keep_going", False):
        return 1
    return 0


def cmd_cache(args) -> int:
    cache = FlowCache(args.cache_dir,
                      max_bytes=getattr(args, "cache_max_bytes", None))
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.directory}")
    elif args.action == "fsck":
        return _cache_fsck(args, cache)
    elif getattr(args, "json", False):
        print(json.dumps(cache.info(), indent=2, sort_keys=True))
    else:
        info = cache.info()
        print(f"cache directory: {info['directory']}")
        if not info["entries"]:
            print("cached results: empty"
                  + ("" if info["exists"] else " (directory not created yet)"))
        else:
            print(f"cached results: {info['entries']} "
                  f"({info['total_bytes'] / 1024:.1f} KiB)")
        if info["blob_entries"]:
            print(f"cached artifact blobs: {info['blob_entries']} "
                  f"({info['blob_bytes'] / 1024:.1f} KiB)")
        if info["max_bytes"]:
            print(f"byte quota: {info['max_bytes'] / 1024:.1f} KiB "
                  "(least-recently-used entries evicted past it)")
        if info["live_locks"] or info["stale_locks"]:
            print(f"locks: {info['live_locks']} live, "
                  f"{info['stale_locks']} stale")
        if info["stale_tmp_files"]:
            print(f"stale tmp files: {info['stale_tmp_files']} "
                  "(from writers that died mid-put; "
                  "'repro cache clear' removes them)")
    return 0


def _cache_fsck(args, cache) -> int:
    """``repro cache fsck [--repair] [--json]``.

    Exit 0 when the store is clean (or every defect was repaired),
    1 when defects remain — scriptable like filesystem fsck.
    """
    report = cache.fsck(repair=getattr(args, "repair", False))
    defects = report["defects"]
    unrepaired = [d for d in defects if not d.get("repaired")]
    if getattr(args, "json", False):
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if not unrepaired else 1
    print(f"cache directory: {report['directory']}")
    print(f"checked: {report['entries']} results, {report['blobs']} blobs, "
          f"{report['live_locks']} live locks")
    if not defects:
        print("clean: no defects found")
        return 0
    for d in defects:
        state = "repaired" if d.get("repaired") else "DEFECT"
        print(f"{state}: {d['kind']} {d['path']} ({d['detail']})")
    if unrepaired:
        hint = "" if getattr(args, "repair", False) \
            else "; rerun with --repair to remove them"
        print(f"{len(unrepaired)} defect(s) remain{hint}")
        return 1
    print(f"repaired {report['repaired']} defect(s)")
    return 0


def cmd_trace(args) -> int:
    from .core import telemetry
    as_json = getattr(args, "json", False)
    try:
        traces = telemetry.load_traces(args.path)
    except OSError as exc:
        print(f"cannot read traces from {args.path}: {exc}",
              file=sys.stderr if as_json else sys.stdout)
        return 1
    if not traces:
        print(f"no traces found in {args.path}",
              file=sys.stderr if as_json else sys.stdout)
        return 1
    stage_times = telemetry.aggregate_stage_times(traces)
    runs = [t for t in traces if t.label != "sweep"]
    counters: dict[str, float] = {}
    for trace in traces:
        telemetry.merge_counters(counters, trace.counters)
    if as_json:
        # Schema documented in docs/observability.md.
        print(json.dumps({
            "path": args.path,
            "traces": len(traces),
            "runs": len(runs),
            "total_s": sum(t.total_s for t in traces),
            "stage_time_s": stage_times,
            "counters": counters,
        }, indent=2, sort_keys=True))
        return 0
    if len(runs) == 1 and runs[0].label:
        title = f"stage breakdown: {runs[0].label}"
    else:
        title = f"stage breakdown over {len(runs)} runs"
    print(telemetry.format_stage_table(stage_times, title=title))
    if counters:
        print("counters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]:g}")
    return 0


def _serve_env(name: str, fallback):
    raw = os.environ.get(f"REPRO_SERVE_{name}", "").strip()
    if not raw:
        return fallback
    return type(fallback)(raw) if fallback is not None else raw


def cmd_serve(args) -> int:
    import asyncio
    import dataclasses
    import signal as signal_mod

    from .core.cache import cache_from_env, default_cache_dir
    from .service import JobJournal, ReproServer, Scheduler
    from .service.journal import DEFAULT_BASENAME

    cache = None if args.no_cache else cache_from_env(
        args.cache_dir, max_bytes=args.cache_max_bytes)
    journal = None
    if args.journal != "":
        path = args.journal or _serve_env("JOURNAL", None)
        if path is None:
            base = cache.directory if cache is not None \
                else default_cache_dir()
            path = os.path.join(str(base), DEFAULT_BASENAME)
        journal = JobJournal(path, resume=not args.no_resume)
    retry = RetryPolicy.from_env()
    patch = {}
    if args.timeout:
        patch["timeout_s"] = args.timeout
    if args.retries:
        patch["max_attempts"] = max(1, args.retries)
    if patch:
        retry = dataclasses.replace(retry, **patch)
    scheduler = Scheduler(cache=cache, workers=args.workers,
                          journal=journal, retry=retry,
                          max_runs=args.max_runs)
    server = ReproServer(scheduler, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        print(f"repro serve listening on "
              f"http://{args.host}:{server.port}", flush=True)
        if args.port_file:
            with open(args.port_file, "w") as handle:
                handle.write(f"{server.port}\n")
        loop = asyncio.get_running_loop()
        for sig in (signal_mod.SIGINT, signal_mod.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(server.stop()))
            except (NotImplementedError, ValueError):
                pass
        await server.wait_stopped()

    asyncio.run(_serve())
    return 0


def cmd_client(args) -> int:
    from .service import ReproClient, ServiceError

    if args.action == "submit" and not args.spec:
        print("error: submit needs --spec FILE (or '-')", file=sys.stderr)
        return 2
    if args.action in ("status", "wait", "cancel") and not args.job_id:
        print(f"error: {args.action} needs a job id", file=sys.stderr)
        return 2
    client = ReproClient(args.server)

    def show(doc) -> None:
        print(json.dumps(doc, indent=2, sort_keys=True))

    try:
        if args.action == "submit":
            if args.spec == "-":
                spec = json.load(sys.stdin)
            else:
                with open(args.spec) as handle:
                    spec = json.load(handle)
            job = client.submit(spec)
            if args.wait:
                job = client.wait(job["id"], timeout_s=args.timeout)
            show(job)
            if args.wait and job.get("state") != "completed":
                return 1
        elif args.action == "status":
            show(client.status(args.job_id))
        elif args.action == "wait":
            job = client.wait(args.job_id, timeout_s=args.timeout)
            show(job)
            if job.get("state") != "completed":
                return 1
        elif args.action == "cancel":
            show(client.cancel(args.job_id))
        elif args.action == "jobs":
            show(client.jobs())
        elif args.action == "health":
            show(client.healthz())
        elif args.action == "stats":
            show(client.stats())
        else:  # shutdown
            show(client.shutdown())
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError, TimeoutError) as exc:
        print(f"error: cannot reach {client.url}: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: spec is not JSON: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FFET dual-sided physical implementation and PPA "
                    "evaluation framework (DATE 2025 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize",
                       help="build libraries, print Table I, dump Liberty")
    p.add_argument("--arch", choices=("ffet", "cfet"), default="ffet")
    p.add_argument("--liberty", metavar="FILE")
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("run", help="run one full implementation flow")
    _add_core_args(p)
    _add_config_args(p)
    _add_output_args(p)
    _add_runner_args(p)
    p.add_argument("--stop-after", metavar="STAGE", default=None,
                   choices=FLOW_STAGES,
                   help="walk the stage graph only through STAGE "
                        "(see `repro stages` for names)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("stages",
                       help="dump the flow's stage graph and config slices")
    p.add_argument("--json", action="store_true",
                   help="print the graph as JSON")
    p.set_defaults(func=cmd_stages)

    p = sub.add_parser("sweep", help="utilization, frequency, "
                                     "routing-layer-split or CTS-mode sweep")
    p.add_argument("axis", choices=("utilization", "frequency", "layers",
                                    "cts"))
    p.add_argument("--points", type=float, nargs="+",
                   help="utilization points")
    p.add_argument("--targets", type=float, nargs="+",
                   help="frequency targets, GHz")
    p.add_argument("--splits", nargs="+", metavar="FRONT:BACK",
                   help="routing-layer splits for the layers axis "
                        "(default: 9:3 8:4 7:5 6:6) or the cts axis "
                        "(default: 12:12 6:6)")
    _add_core_args(p)
    _add_config_args(p)
    _add_output_args(p)
    _add_runner_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("doe", help="Fig. 11 / Table III explorations")
    p.add_argument("kind", choices=("pin-density", "coopt"))
    p.add_argument("--fractions", type=float, nargs="+",
                   default=[0.04, 0.3, 0.5])
    p.add_argument("--points", type=float, nargs="+")
    p.add_argument("--utilization", type=float, default=0.70)
    p.add_argument("--frequency", type=float, default=1.5)
    p.add_argument("--seed", type=int, default=0)
    _add_core_args(p)
    _add_output_args(p)
    _add_runner_args(p)
    p.set_defaults(func=cmd_doe)

    p = sub.add_parser("compare", help="CFET vs FFET headline comparison")
    p.add_argument("--utilization", type=float, default=0.70)
    p.add_argument("--frequency", type=float, default=1.5)
    p.add_argument("--seed", type=int, default=0)
    _add_core_args(p)
    _add_output_args(p)
    _add_runner_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("mc",
                       help="overlay-aware Monte-Carlo variation study "
                            "with statistical PPA signoff")
    _add_core_args(p)
    _add_config_args(p)
    p.add_argument("--samples", type=int, default=64,
                   help="Monte-Carlo sample count (default: 64)")
    p.add_argument("--overlay-sigma", type=float, default=2.0,
                   metavar="NM",
                   help="frontside/backside overlay sigma per axis, nm")
    p.add_argument("--cd-sigma", type=float, default=0.03, metavar="REL",
                   help="CD/gate-length cell-delay sigma (relative)")
    p.add_argument("--rc-sigma", type=float, default=0.04, metavar="REL",
                   help="metal thickness/width wire-RC sigma (relative)")
    p.add_argument("--json", metavar="FILE",
                   help="write the signoff report + per-sample rows as JSON")
    p.add_argument("--jobs", "-j", type=int, default=None,
                   help="parallel sample-evaluation workers (default: "
                        "$REPRO_JOBS or 1; 0 = one per core); never "
                        "changes the results")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute the nominal flow, bypassing the cache")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: "
                        "$REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="byte quota for the cache directory (default: "
                        "$REPRO_CACHE_MAX_BYTES or unbounded)")
    p.add_argument("--trace", metavar="DIR", default=None,
                   help="write the study's telemetry trace (JSONL) into DIR")
    p.add_argument("--keep-going", action="store_true",
                   help="exit 0 even when some samples were quarantined")
    p.set_defaults(func=cmd_mc)

    p = sub.add_parser("cache",
                       help="inspect, audit or clear the flow result cache")
    p.add_argument("action", choices=("info", "clear", "fsck"))
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="byte quota reported by 'info' (default: "
                        "$REPRO_CACHE_MAX_BYTES or unbounded)")
    p.add_argument("--repair", action="store_true",
                   help="with fsck: delete every defective file found "
                        "(corrupt entries/blobs, stale tmp files and locks)")
    p.add_argument("--json", action="store_true",
                   help="print the cache summary / fsck report as JSON "
                        "(see docs/observability.md for the schema)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("trace",
                       help="report on telemetry traces from --trace runs")
    p.add_argument("action", choices=("report",))
    p.add_argument("path",
                   help="a trace .jsonl file or a --trace output directory")
    p.add_argument("--json", action="store_true",
                   help="print the aggregated report as JSON "
                        "(see docs/observability.md for the schema)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("serve",
                       help="run the async job server (docs/service.md)")
    p.add_argument("--host", default=_serve_env("HOST", "127.0.0.1"),
                   help="bind address (default: $REPRO_SERVE_HOST "
                        "or 127.0.0.1)")
    p.add_argument("--port", type=int, default=_serve_env("PORT", 8642),
                   help="bind port, 0 = ephemeral (default: "
                        "$REPRO_SERVE_PORT or 8642)")
    p.add_argument("--port-file", metavar="FILE", default=None,
                   help="write the bound port here once listening "
                        "(for scripts using --port 0)")
    p.add_argument("--workers", type=int,
                   default=_serve_env("WORKERS", 2),
                   help="flow worker processes (default: "
                        "$REPRO_SERVE_WORKERS or 2)")
    p.add_argument("--journal", metavar="FILE", default=None,
                   help="crash-safe job journal; '' disables it "
                        "(default: $REPRO_SERVE_JOURNAL or "
                        "<cache-dir>/service-journal.jsonl)")
    p.add_argument("--no-resume", action="store_true",
                   help="start with a fresh journal instead of replaying "
                        "jobs from an interrupted server")
    p.add_argument("--no-cache", action="store_true",
                   help="run without the shared result cache (disables "
                        "cross-job result and stage dedup)")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: "
                        "$REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="byte quota for the cache directory (default: "
                        "$REPRO_CACHE_MAX_BYTES or unbounded)")
    p.add_argument("--max-runs", type=int,
                   default=_serve_env("MAX_RUNS", 256),
                   help="per-job quota: a spec expanding to more runs is "
                        "rejected (default: $REPRO_SERVE_MAX_RUNS or 256)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="default per-run wall-clock budget (default: "
                        "$REPRO_TIMEOUT or unlimited)")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="default max attempts per run (default: "
                        "$REPRO_RETRIES or 3)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("client",
                       help="talk to a running 'repro serve' daemon")
    p.add_argument("action",
                   choices=("submit", "status", "wait", "cancel", "jobs",
                            "health", "stats", "shutdown"))
    p.add_argument("job_id", nargs="?", default=None,
                   help="job id (for status/wait/cancel)")
    p.add_argument("--server", default=None, metavar="URL",
                   help="server URL (default: $REPRO_SERVE_URL or "
                        "http://127.0.0.1:8642)")
    p.add_argument("--spec", metavar="FILE", default=None,
                   help="job spec JSON for submit ('-' reads stdin)")
    p.add_argument("--wait", action="store_true",
                   help="with submit: block until the job settles")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="deadline for wait (default: forever)")
    p.set_defaults(func=cmd_client)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FlowError as exc:
        # One structured line (stage, config, cause), not a traceback.
        print(f"error: {exc.one_line()}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
